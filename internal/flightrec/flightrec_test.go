package flightrec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func fakeClock() func() time.Time {
	t := time.Unix(1700000000, 0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindRetry})
	r.RecordKind(KindPanic, "shm.compress2d", 3, 1)
	r.SetClock(time.Now)
	r.SetDumpPath("/nonexistent/should-not-be-written")
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if r.Total() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Error("nil recorder retained state")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil || d.Recorded != 0 {
		t.Fatalf("nil dump = %s, err %v", buf.Bytes(), err)
	}
	if path, err := r.DumpOnOutcome(os.ErrInvalid, true); path != "" || err != nil {
		t.Fatalf("nil DumpOnOutcome = %q, %v", path, err)
	}
}

func TestRecordOrderAndSeq(t *testing.T) {
	r := New(8)
	r.SetClock(fakeClock())
	r.RecordKind(KindRetry, "shm.compress2d", 2, 1)
	r.RecordKind(KindPanic, "shm.compress2d", 2, 1)
	r.Record(Event{Kind: KindDegraded, Subsystem: "shm.compress2d", Slab: 2, Attempt: 2})
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.TimeUnixNS == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if evs[0].Kind != KindRetry || evs[2].Kind != KindDegraded {
		t.Errorf("order wrong: %+v", evs)
	}
	if evs[2].Slab != 2 || evs[2].Attempt != 2 {
		t.Errorf("attribution lost: %+v", evs[2])
	}
}

// TestRingWrap pins the overflow behaviour: a full ring keeps the newest
// events, reports the overwritten ones as dropped, and the surviving
// sequence numbers expose the gap.
func TestRingWrap(t *testing.T) {
	const capacity, total = 16, 100
	r := New(capacity)
	for i := 0; i < total; i++ {
		r.Record(Event{Kind: KindRollback, Subsystem: "core.2d", Code: int64(i)})
	}
	if got := r.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	if got := r.Dropped(); got != total-capacity {
		t.Fatalf("Dropped = %d, want %d", got, total-capacity)
	}
	evs := r.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("snapshot holds %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantSeq := uint64(total - capacity + i + 1)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Code != int64(total-capacity+i) {
			t.Fatalf("event %d code = %d", i, ev.Code)
		}
	}
}

// TestConcurrentRecord drives many goroutines into one ring under -race:
// every recorded event must survive with a unique sequence number.
func TestConcurrentRecord(t *testing.T) {
	const workers, perWorker = 8, 500
	r := New(workers * perWorker) // no wrap: every event retained
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.RecordKind(KindRetry, "shm.compress3d", w, i)
			}
		}(w)
	}
	wg.Wait()
	evs := r.Snapshot()
	if len(evs) != workers*perWorker {
		t.Fatalf("retained %d events, want %d", len(evs), workers*perWorker)
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestDumpOnOutcome(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	r := New(8)
	r.SetDumpPath(path)
	r.RecordKind(KindRetry, "shm.compress2d", 1, 1)
	r.RecordKind(KindDegraded, "shm.compress2d", 1, 2)

	// A clean run must not dump.
	if got, err := r.DumpOnOutcome(nil, false); got != "" || err != nil {
		t.Fatalf("clean run dumped to %q, err %v", got, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("dump file exists after clean run")
	}

	// A degraded run dumps once; a second trigger is a no-op.
	got, err := r.DumpOnOutcome(nil, true)
	if err != nil || got != path {
		t.Fatalf("DumpOnOutcome = %q, %v", got, err)
	}
	if again, err := r.DumpOnOutcome(nil, true); again != "" || err != nil {
		t.Fatalf("second dump = %q, %v", again, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.Recorded != 2 || len(d.Events) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Events[1].Kind != KindDegraded || d.Events[1].Slab != 1 || d.Events[1].Attempt != 2 {
		t.Fatalf("degradation event lost attribution: %+v", d.Events[1])
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("kind %v round-trips to %v (err %v)", k, back, err)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no_such_kind"`), &k); err == nil {
		t.Error("unknown kind name must fail to unmarshal")
	}
}

func BenchmarkRecord(b *testing.B) {
	r := New(DefaultCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordKind(KindRollback, "core.3d", 0, 0)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordKind(KindRollback, "core.3d", 0, 0)
	}
}
