// Package flightrec is the pipeline's flight recorder: a fixed-size,
// allocation-free ring of structured events recording the rare,
// diagnosis-critical moments of a run — slab retries, recovered panics,
// degradations to the lossless escape, integrity failures, speculation
// rollbacks, missed deadlines, and injected faults. When a run ends in an
// error or a degradation, the ring is dumped as JSON so the postmortem
// shows the exact event sequence that led there, oldest first.
//
// The package follows the repository's nil-safe instrumentation
// convention (see internal/telemetry): a nil *Recorder is the disabled
// state and every method on it is a no-op costing one nil check, so hot
// paths carry their Record calls unconditionally. Recording into an
// enabled ring takes one short critical section and writes into
// preallocated slots — no per-event allocation, ever; once the ring is
// full the oldest events are overwritten and counted as dropped.
//
// All methods are safe for concurrent use; the shared-memory slab workers
// and the simulated MPI ranks record into one ring.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindNote is a free-form marker (run start, stage transitions).
	KindNote Kind = iota
	// KindRetry is one retried slab attempt (attempt > 0).
	KindRetry
	// KindPanic is a recovered worker panic.
	KindPanic
	// KindDeadline is a slab attempt or message receive that exceeded its
	// deadline.
	KindDeadline
	// KindDegraded is a slab falling back to the lossless escape encoding
	// after exhausting its attempts.
	KindDegraded
	// KindIntegrityFail is a checksum or structural integrity failure
	// surfaced by a decode.
	KindIntegrityFail
	// KindRollback is a rejected speculation trial (the kernel restoring
	// pre-trial state for a vertex).
	KindRollback
	// KindFaultInjected is a deterministic fault fired by
	// internal/faultinject.
	KindFaultInjected
	// KindStraggler is a simulated-MPI receive that needed at least one
	// timeout retry before the message arrived.
	KindStraggler
	// KindWindowRefill is a streaming slab admitted into the bounded
	// window (the worker may have stalled waiting for a free window
	// slot; Detail distinguishes an immediate grant from a stall).
	KindWindowRefill
	// KindWindowEvict is a streaming slab retired from the window after
	// its blob was flushed to the container, freeing its slot.
	KindWindowEvict
	// KindShed is a network request rejected at admission because the
	// daemon's bounded queue was full (the 429 load-shedding path).
	KindShed
	// KindClientGone is a network request abandoned mid-stream by its
	// client; the server cancels the request context and releases the
	// admission permit.
	KindClientGone
	numKinds
)

var kindNames = [numKinds]string{
	"note", "retry", "panic", "deadline", "degraded",
	"integrity_fail", "rollback", "fault_injected", "straggler",
	"window_refill", "window_evict", "shed", "client_gone",
}

func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts a kind name written by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("flightrec: unknown kind %q", s)
}

// Event is one recorded moment. The struct is fixed-size and free of
// heap-allocating fields beyond string headers: Subsystem and Detail are
// expected to reference constant or long-lived strings, so recording one
// never allocates.
type Event struct {
	// Seq is the global sequence number, starting at 1; gaps after a dump
	// reveal dropped (overwritten) events.
	Seq uint64 `json:"seq"`
	// TimeUnixNS is the wall-clock time of the record call.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Subsystem names the emitter, e.g. "shm.compress2d" or "core.3d".
	Subsystem string `json:"subsystem,omitempty"`
	// Slab is the slab index the event belongs to, -1 when not slab
	// scoped.
	Slab int32 `json:"slab"`
	// Attempt is the attempt number (0-based) for retry-shaped events,
	// -1 when not applicable.
	Attempt int32 `json:"attempt"`
	// Code carries an event-specific payload: a vertex id for rollbacks,
	// a fault kind for injections, a byte offset for integrity failures.
	Code int64 `json:"code,omitempty"`
	// Detail is a short, preallocated description (an error site, a fault
	// name). Formatting a fresh string here would defeat the
	// allocation-free contract; pass constants or pre-built strings.
	Detail string `json:"detail,omitempty"`
}

// DefaultCapacity is the ring size New uses when given a non-positive
// capacity: large enough to hold the full retry/degradation history of a
// saturated 16-slab run with room for kernel rollback context.
const DefaultCapacity = 4096

// Recorder is the bounded event ring. A nil *Recorder records nothing.
type Recorder struct {
	mu      sync.Mutex
	ring    []Event
	next    uint64 // total events ever recorded == next Seq - 1
	now     func() time.Time
	dumped  bool
	dumpDst string
}

// New returns an enabled recorder holding the last cap events
// (DefaultCapacity when cap <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Event, capacity), now: time.Now}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SetClock replaces the wall clock, for deterministic tests.
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Record appends ev to the ring, filling Seq and TimeUnixNS. The oldest
// event is overwritten when the ring is full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev.Seq = r.next + 1
	ev.TimeUnixNS = r.now().UnixNano()
	r.ring[r.next%uint64(len(r.ring))] = ev
	r.next++
	r.mu.Unlock()
}

// RecordKind is the common-case helper: kind plus slab/attempt
// attribution under a subsystem name.
func (r *Recorder) RecordKind(kind Kind, subsystem string, slab, attempt int) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: kind, Subsystem: subsystem, Slab: int32(slab), Attempt: int32(attempt)})
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(len(r.ring)) {
		return 0
	}
	return r.next - uint64(len(r.ring))
}

// Snapshot copies the retained events out of the ring, oldest first.
// A nil recorder yields nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	capacity := uint64(len(r.ring))
	start := uint64(0)
	count := n
	if n > capacity {
		start = n - capacity
		count = capacity
	}
	out := make([]Event, 0, count)
	for i := start; i < n; i++ {
		out = append(out, r.ring[i%capacity])
	}
	return out
}

// Dump is the JSON document a postmortem reads: recording totals plus the
// retained event sequence, oldest first.
type Dump struct {
	Recorded uint64  `json:"recorded"`
	Dropped  uint64  `json:"dropped"`
	Events   []Event `json:"events"`
}

// WriteJSON writes the recorder's Dump as one indented JSON document.
// A nil recorder writes an empty dump, keeping error-path callers
// unconditional.
func (r *Recorder) WriteJSON(w io.Writer) error {
	d := Dump{Recorded: r.Total(), Dropped: r.Dropped(), Events: r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// SetDumpPath arms automatic postmortem dumping: the first DumpOnOutcome
// call reporting a failed or degraded run writes the ring to path.
func (r *Recorder) SetDumpPath(path string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dumpDst = path
	r.mu.Unlock()
}

// DumpOnOutcome implements the "dump automatically on any error/degraded
// run" contract: when the run failed (err != nil) or degraded, and a dump
// path is armed, the ring is written there exactly once. It returns the
// path written, or "" when nothing was dumped.
func (r *Recorder) DumpOnOutcome(err error, degraded bool) (string, error) {
	if r == nil || (err == nil && !degraded) {
		return "", nil
	}
	r.mu.Lock()
	path := r.dumpDst
	already := r.dumped
	if path != "" {
		r.dumped = true
	}
	r.mu.Unlock()
	if path == "" || already {
		return "", nil
	}
	f, cerr := os.Create(path)
	if cerr != nil {
		return "", cerr
	}
	if werr := r.WriteJSON(f); werr != nil {
		f.Close()
		return "", werr
	}
	return path, f.Close()
}
