// Package iosim models a parallel filesystem (GPFS-class) for the I/O
// performance study of Fig. 9: reading and writing time is governed by an
// aggregate backend bandwidth shared by all nodes, a per-node injection
// cap, and a per-operation latency.
package iosim

import "time"

// FileSystem is the cost model of the parallel filesystem.
type FileSystem struct {
	// Aggregate is the backend bandwidth in bytes/second shared by all
	// writers/readers (default 40 GB/s).
	Aggregate float64
	// PerNode caps each node's injection bandwidth (default 3 GB/s).
	PerNode float64
	// Latency is the per-operation overhead (default 2ms).
	Latency time.Duration
	// CoresPerNode maps ranks to nodes (default 128, the paper's nodes).
	CoresPerNode int
}

func (fs FileSystem) withDefaults() FileSystem {
	if fs.Aggregate == 0 {
		fs.Aggregate = 40e9
	}
	if fs.PerNode == 0 {
		fs.PerNode = 3e9
	}
	if fs.Latency == 0 {
		fs.Latency = 2 * time.Millisecond
	}
	if fs.CoresPerNode == 0 {
		fs.CoresPerNode = 128
	}
	return fs
}

// TransferTime returns the time for `ranks` processes to collectively move
// totalBytes to or from the filesystem.
func (fs FileSystem) TransferTime(totalBytes int64, ranks int) time.Duration {
	fs = fs.withDefaults()
	nodes := (ranks + fs.CoresPerNode - 1) / fs.CoresPerNode
	if nodes < 1 {
		nodes = 1
	}
	bw := fs.Aggregate
	if nb := float64(nodes) * fs.PerNode; nb < bw {
		bw = nb
	}
	return fs.Latency + time.Duration(float64(totalBytes)/bw*float64(time.Second))
}
