package iosim

import (
	"testing"
	"time"
)

func TestTransferTimeScalesWithSize(t *testing.T) {
	fs := FileSystem{}
	small := fs.TransferTime(1<<20, 512)
	large := fs.TransferTime(1<<30, 512)
	if large <= small {
		t.Errorf("larger transfer should take longer: %v vs %v", small, large)
	}
}

func TestTransferTimeNodeCap(t *testing.T) {
	fs := FileSystem{Aggregate: 40e9, PerNode: 3e9, CoresPerNode: 128, Latency: time.Millisecond}
	// 1 node (128 ranks) is capped at 3 GB/s; 512 ranks = 4 nodes = 12 GB/s.
	one := fs.TransferTime(3e9, 128)
	four := fs.TransferTime(3e9, 512)
	if four >= one {
		t.Errorf("more nodes should be faster below the aggregate cap: %v vs %v", four, one)
	}
	// Beyond the aggregate cap adding nodes does not help.
	many := fs.TransferTime(3e9, 128*100)
	agg := fs.TransferTime(3e9, 128*14) // 14 nodes * 3 = 42 > 40 GB/s cap
	diff := many - agg
	if diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("aggregate cap not respected: %v vs %v", many, agg)
	}
}

func TestTransferTimeIncludesLatency(t *testing.T) {
	fs := FileSystem{Latency: 50 * time.Millisecond}
	if got := fs.TransferTime(0, 1); got < 50*time.Millisecond {
		t.Errorf("latency missing: %v", got)
	}
}

func TestDefaults(t *testing.T) {
	fs := FileSystem{}.withDefaults()
	if fs.Aggregate == 0 || fs.PerNode == 0 || fs.Latency == 0 || fs.CoresPerNode == 0 {
		t.Error("defaults not applied")
	}
}
