// Package huffman implements a canonical Huffman coder over non-negative
// integer alphabets. It is the first lossless stage of the compression
// pipeline: quantization codes and error-bound exponents are Huffman-coded
// before the byte stream is handed to DEFLATE (package encoder).
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitstream"
)

// maxCodeLen bounds code lengths so codes always fit a single
// bitstream write. Frequencies are rescaled if the tree gets deeper.
const maxCodeLen = 48

// Compress encodes syms into a self-contained block (count, code length
// table, padded code bits).
func Compress(syms []uint32) []byte {
	lengths := codeLengths(syms)
	codes := canonicalCodes(lengths)

	var head []byte
	head = binary.AppendUvarint(head, uint64(len(syms)))
	// Serialize the nonzero code lengths as (delta symbol, length) pairs.
	var nz []uint32
	for s, l := range lengths {
		if l > 0 {
			nz = append(nz, s)
		}
	}
	sort.Slice(nz, func(i, j int) bool { return nz[i] < nz[j] })
	head = binary.AppendUvarint(head, uint64(len(nz)))
	prev := uint32(0)
	for _, s := range nz {
		head = binary.AppendUvarint(head, uint64(s-prev))
		head = append(head, byte(lengths[s]))
		prev = s
	}

	var w bitstream.Writer
	for _, s := range syms {
		c := codes[s]
		w.WriteBits(c.bits, uint(c.len))
	}
	return append(head, w.Bytes()...)
}

// Decompress decodes a block produced by Compress.
func Decompress(data []byte) ([]uint32, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errors.New("huffman: bad count")
	}
	data = data[k:]
	// Every symbol costs at least one bit; reject counts a corrupt header
	// could not possibly back with data (prevents huge allocations).
	if n > uint64(len(data))*8+1 {
		return nil, errors.New("huffman: symbol count exceeds stream capacity")
	}
	nnz, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errors.New("huffman: bad table size")
	}
	data = data[k:]
	if nnz > uint64(len(data)) {
		return nil, errors.New("huffman: table size exceeds stream capacity")
	}
	lengths := map[uint32]uint8{}
	prev := uint32(0)
	for i := uint64(0); i < nnz; i++ {
		d, k := binary.Uvarint(data)
		if k <= 0 || len(data) < k+1 {
			return nil, errors.New("huffman: truncated table")
		}
		sym := prev + uint32(d)
		lengths[sym] = data[k]
		data = data[k+1:]
		prev = sym
	}
	dec, err := newDecoder(lengths)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	r := bitstream.NewReader(data)
	for i := range out {
		s, err := dec.decode(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

type code struct {
	bits uint64
	len  uint8
}

// codeLengths computes Huffman code lengths for the symbols appearing in
// syms, rescaling frequencies until the depth limit is met.
func codeLengths(syms []uint32) map[uint32]uint8 {
	freq := map[uint32]uint64{}
	for _, s := range syms {
		freq[s]++
	}
	lengths := map[uint32]uint8{}
	switch len(freq) {
	case 0:
		return lengths
	case 1:
		for s := range freq {
			lengths[s] = 1
		}
		return lengths
	}
	for {
		l := buildLengths(freq)
		deep := false
		for s, d := range l {
			if d > maxCodeLen {
				deep = true
			}
			lengths[s] = d
		}
		if !deep {
			return lengths
		}
		for s := range freq {
			freq[s] = freq[s]/2 + 1
		}
	}
}

type hnode struct {
	freq        uint64
	sym         uint32
	left, right *hnode
	order       int // tie-break for determinism
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func buildLengths(freq map[uint32]uint64) map[uint32]uint8 {
	syms := make([]uint32, 0, len(freq))
	for s := range freq {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	h := make(hheap, 0, len(syms))
	order := 0
	for _, s := range syms {
		h = append(h, &hnode{freq: freq[s], sym: s, order: order})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		heap.Push(&h, &hnode{freq: a.freq + b.freq, left: a, right: b, order: order})
		order++
	}
	root := h[0]
	lengths := map[uint32]uint8{}
	var walk func(n *hnode, depth uint8)
	walk = func(n *hnode, depth uint8) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes (shorter codes numerically first,
// ties broken by symbol order). Code bits are stored MSB-first within the
// code so decoding can proceed bit by bit.
func canonicalCodes(lengths map[uint32]uint8) map[uint32]code {
	type sl struct {
		sym uint32
		len uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		list = append(list, sl{s, l})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].len != list[j].len {
			return list[i].len < list[j].len
		}
		return list[i].sym < list[j].sym
	})
	codes := make(map[uint32]code, len(list))
	c := uint64(0)
	prevLen := uint8(0)
	for _, e := range list {
		c <<= uint(e.len - prevLen)
		codes[e.sym] = code{bits: reverseBits(c, e.len), len: e.len}
		c++
		prevLen = e.len
	}
	return codes
}

// reverseBits reverses the low n bits of v so that an MSB-first canonical
// code can be emitted through the LSB-first bitstream writer.
func reverseBits(v uint64, n uint8) uint64 {
	var r uint64
	for i := uint8(0); i < n; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// decoder performs canonical decoding with the first-code-per-length
// method.
type decoder struct {
	// For each length l: firstCode[l] is the numeric value of the first
	// canonical code of that length, and symbols[l] the symbols in order.
	firstCode [maxCodeLen + 1]uint64
	symbols   [maxCodeLen + 1][]uint32
	maxLen    uint8
}

func newDecoder(lengths map[uint32]uint8) (*decoder, error) {
	d := &decoder{}
	type sl struct {
		sym uint32
		len uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		list = append(list, sl{s, l})
		if l > d.maxLen {
			d.maxLen = l
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].len != list[j].len {
			return list[i].len < list[j].len
		}
		return list[i].sym < list[j].sym
	})
	c := uint64(0)
	prevLen := uint8(0)
	for _, e := range list {
		c <<= uint(e.len - prevLen)
		if len(d.symbols[e.len]) == 0 {
			d.firstCode[e.len] = c
		}
		d.symbols[e.len] = append(d.symbols[e.len], e.sym)
		c++
		prevLen = e.len
	}
	return d, nil
}

func (d *decoder) decode(r *bitstream.Reader) (uint32, error) {
	var c uint64
	for l := uint8(1); l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		c = (c << 1) | uint64(b)
		syms := d.symbols[l]
		if len(syms) > 0 {
			idx := c - d.firstCode[l]
			if c >= d.firstCode[l] && idx < uint64(len(syms)) {
				return syms[idx], nil
			}
		}
	}
	return 0, errors.New("huffman: invalid code")
}

// Zigzag maps a signed integer to an unsigned one with small magnitudes
// first (0→0, -1→1, 1→2, ...), the standard preparation of quantization
// codes for entropy coding.
func Zigzag(v int64) uint32 {
	return uint32((v << 1) ^ (v >> 63))
}

// Unzigzag inverts Zigzag.
func Unzigzag(u uint32) int64 {
	v := int64(u)
	return (v >> 1) ^ -(v & 1)
}
