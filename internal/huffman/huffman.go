// Package huffman implements a canonical Huffman coder over non-negative
// integer alphabets. It is the first lossless stage of the compression
// pipeline: quantization codes and error-bound exponents are Huffman-coded
// before the byte stream is handed to DEFLATE (package encoder).
//
// The coder is allocation-conscious: symbols below denseSyms (all bound
// exponents and virtually every zigzagged quantization code) are counted
// and encoded through flat array codebooks drawn from a sync.Pool; only
// outlier symbols fall back to maps. The emitted byte stream is identical
// to the map-based implementation's — table storage is an internal detail,
// the canonical code assignment is not.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/safedim"
)

// maxCodeLen bounds code lengths so codes always fit a single
// bitstream write. Frequencies are rescaled if the tree gets deeper.
const maxCodeLen = 48

// denseSyms bounds the array-backed fast tables. Symbols < denseSyms are
// indexed directly; larger ones (escape-range outliers) go through a map.
const denseSyms = 4096

// denseTables is the pooled scratch of one Compress call: the frequency
// histogram and the encode codebook for the dense symbol range.
type denseTables struct {
	freq  [denseSyms]uint64
	codes [denseSyms]code
}

var densePool = sync.Pool{New: func() interface{} { return new(denseTables) }}

// symLen is one (symbol, code length) table entry.
type symLen struct {
	sym uint32
	len uint8
}

// Compress encodes syms into a self-contained block (count, code length
// table, padded code bits).
func Compress(syms []uint32) []byte {
	dt := densePool.Get().(*denseTables)

	// Count frequencies: flat array for the dense range, map only when an
	// outlier actually occurs.
	var sparseFreq map[uint32]uint64
	for _, s := range syms {
		if s < denseSyms {
			dt.freq[s]++
		} else {
			if sparseFreq == nil {
				sparseFreq = make(map[uint32]uint64)
			}
			sparseFreq[s]++
		}
	}

	// Collect the nonzero symbols in increasing order (outliers are all
	// >= denseSyms, so they sort after the dense scan).
	nz := make([]symLen, 0, 64)
	freqs := make([]uint64, 0, 64)
	for s, f := range dt.freq[:] {
		if f != 0 {
			nz = append(nz, symLen{sym: uint32(s)})
			freqs = append(freqs, f)
			dt.freq[s] = 0 // leave the pooled histogram clean
		}
	}
	if sparseFreq != nil {
		base := len(nz)
		for s := range sparseFreq {
			nz = append(nz, symLen{sym: s})
		}
		sort.Slice(nz[base:], func(i, j int) bool { return nz[base+i].sym < nz[base+j].sym })
		for _, e := range nz[base:] {
			freqs = append(freqs, sparseFreq[e.sym])
		}
	}

	codeLengths(nz, freqs)
	var sparseCodes map[uint32]code
	sparseCodes = canonicalCodes(nz, &dt.codes, sparseCodes)

	var head []byte
	head = binary.AppendUvarint(head, uint64(len(syms)))
	// Serialize the nonzero code lengths as (delta symbol, length) pairs.
	head = binary.AppendUvarint(head, uint64(len(nz)))
	prev := uint32(0)
	for _, e := range nz {
		head = binary.AppendUvarint(head, uint64(e.sym-prev))
		head = append(head, e.len)
		prev = e.sym
	}

	var w bitstream.Writer
	for _, s := range syms {
		var c code
		if s < denseSyms {
			c = dt.codes[s]
		} else {
			c = sparseCodes[s]
		}
		w.WriteBits(c.bits, uint(c.len))
	}
	densePool.Put(dt)
	return append(head, w.Bytes()...)
}

// Decompress decodes a block produced by Compress.
func Decompress(data []byte) ([]uint32, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errors.New("huffman: bad count")
	}
	data = data[k:]
	// Every symbol costs at least one bit; reject counts a corrupt header
	// could not possibly back with data (prevents huge allocations).
	if n > uint64(len(data))*8+1 {
		return nil, errors.New("huffman: symbol count exceeds stream capacity")
	}
	nnz, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errors.New("huffman: bad table size")
	}
	data = data[k:]
	if nnz > uint64(len(data)) {
		return nil, errors.New("huffman: table size exceeds stream capacity")
	}
	list := make([]symLen, 0, nnz)
	prev := uint32(0)
	for i := uint64(0); i < nnz; i++ {
		d, k := binary.Uvarint(data)
		if k <= 0 || len(data) < k+1 {
			return nil, errors.New("huffman: truncated table")
		}
		sym := prev + uint32(d)
		// Deltas are nondecreasing, so a duplicate symbol (corrupt input)
		// can only repeat the previous entry; keep the last length, the
		// same resolution the map-based table applied.
		if len(list) > 0 && list[len(list)-1].sym == sym {
			list[len(list)-1].len = data[k]
		} else {
			list = append(list, symLen{sym: sym, len: data[k]})
		}
		data = data[k+1:]
		prev = sym
	}
	dec, err := newDecoder(list)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	r := bitstream.NewReader(data)
	for i := range out {
		s, err := dec.decode(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

type code struct {
	bits uint64
	len  uint8
}

// codeLengths fills the len field of nz (sorted by symbol, parallel to
// freqs) with Huffman code lengths, rescaling frequencies until the depth
// limit is met. freqs is clobbered.
func codeLengths(nz []symLen, freqs []uint64) {
	switch len(nz) {
	case 0:
		return
	case 1:
		nz[0].len = 1
		return
	}
	for {
		buildLengths(nz, freqs)
		deep := false
		for _, e := range nz {
			if e.len > maxCodeLen {
				deep = true
				break
			}
		}
		if !deep {
			return
		}
		for i := range freqs {
			freqs[i] = freqs[i]/2 + 1
		}
	}
}

type hnode struct {
	freq        uint64
	leaf        int // index into nz, or -1
	left, right *hnode
	order       int // tie-break for determinism
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildLengths runs the Huffman merge over (nz, freqs) — nz is already in
// increasing symbol order, which fixes the deterministic tie-break — and
// writes the resulting depth of each leaf into nz[i].len. All tree nodes
// come from one backing slice (2n-1 nodes total).
func buildLengths(nz []symLen, freqs []uint64) {
	n := len(nz)
	backing := make([]hnode, safedim.MustProduct(2, n)-1)
	h := make(hheap, 0, n)
	order := 0
	for i := range nz {
		nd := &backing[order]
		*nd = hnode{freq: freqs[i], leaf: i, order: order}
		h = append(h, nd)
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		nd := &backing[order]
		*nd = hnode{freq: a.freq + b.freq, leaf: -1, left: a, right: b, order: order}
		heap.Push(&h, nd)
		order++
	}
	root := h[0]
	var walk func(nd *hnode, depth uint8)
	walk = func(nd *hnode, depth uint8) {
		if nd.left == nil {
			if depth == 0 {
				depth = 1
			}
			nz[nd.leaf].len = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(root, 0)
}

// canonicalCodes assigns canonical codes (shorter codes numerically first,
// ties broken by symbol order) into the dense array (and the returned
// sparse map for symbols >= denseSyms). Code bits are stored MSB-first
// within the code so decoding can proceed bit by bit.
func canonicalCodes(nz []symLen, dense *[denseSyms]code, sparse map[uint32]code) map[uint32]code {
	list := make([]symLen, len(nz))
	copy(list, nz)
	sort.Slice(list, func(i, j int) bool {
		if list[i].len != list[j].len {
			return list[i].len < list[j].len
		}
		return list[i].sym < list[j].sym
	})
	c := uint64(0)
	prevLen := uint8(0)
	for _, e := range list {
		c <<= uint(e.len - prevLen)
		cd := code{bits: reverseBits(c, e.len), len: e.len}
		if e.sym < denseSyms {
			dense[e.sym] = cd
		} else {
			if sparse == nil {
				sparse = make(map[uint32]code)
			}
			sparse[e.sym] = cd
		}
		c++
		prevLen = e.len
	}
	return sparse
}

// reverseBits reverses the low n bits of v so that an MSB-first canonical
// code can be emitted through the LSB-first bitstream writer.
func reverseBits(v uint64, n uint8) uint64 {
	var r uint64
	for i := uint8(0); i < n; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// decoder performs canonical decoding with the first-code-per-length
// method.
type decoder struct {
	// For each length l: firstCode[l] is the numeric value of the first
	// canonical code of that length, and symbols[l] the symbols in order.
	firstCode [maxCodeLen + 1]uint64
	symbols   [maxCodeLen + 1][]uint32
	maxLen    uint8
}

func newDecoder(list []symLen) (*decoder, error) {
	d := &decoder{}
	for _, e := range list {
		if e.len == 0 || e.len > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", e.len)
		}
		if e.len > d.maxLen {
			d.maxLen = e.len
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].len != list[j].len {
			return list[i].len < list[j].len
		}
		return list[i].sym < list[j].sym
	})
	// After the (len, sym) sort each length's symbols are one contiguous
	// run; a single backing slice serves every per-length view.
	backing := make([]uint32, len(list))
	for i, e := range list {
		backing[i] = e.sym
	}
	c := uint64(0)
	prevLen := uint8(0)
	start := 0
	for i, e := range list {
		c <<= uint(e.len - prevLen)
		if e.len != prevLen {
			start = i
			d.firstCode[e.len] = c
		}
		d.symbols[e.len] = backing[start : i+1]
		c++
		prevLen = e.len
	}
	return d, nil
}

func (d *decoder) decode(r *bitstream.Reader) (uint32, error) {
	var c uint64
	for l := uint8(1); l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		c = (c << 1) | uint64(b)
		syms := d.symbols[l]
		if len(syms) > 0 {
			idx := c - d.firstCode[l]
			if c >= d.firstCode[l] && idx < uint64(len(syms)) {
				return syms[idx], nil
			}
		}
	}
	return 0, errors.New("huffman: invalid code")
}

// Zigzag maps a signed integer to an unsigned one with small magnitudes
// first (0→0, -1→1, 1→2, ...), the standard preparation of quantization
// codes for entropy coding.
func Zigzag(v int64) uint32 {
	return uint32((v << 1) ^ (v >> 63))
}

// Unzigzag inverts Zigzag.
func Unzigzag(u uint32) int64 {
	v := int64(u)
	return (v >> 1) ^ -(v & 1)
}
