package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, syms []uint32) {
	t.Helper()
	blob := Compress(syms)
	got, err := Decompress(blob)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(got) != len(syms) {
		t.Fatalf("length %d, want %d", len(got), len(syms))
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: %d != %d", i, got[i], syms[i])
		}
	}
}

func TestEmpty(t *testing.T) {
	roundTrip(t, nil)
}

func TestSingleSymbol(t *testing.T) {
	roundTrip(t, []uint32{7})
	roundTrip(t, []uint32{7, 7, 7, 7, 7})
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []uint32{0, 1, 0, 0, 1, 0})
}

func TestSkewedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	syms := make([]uint32, 10000)
	for i := range syms {
		// Geometric-ish distribution like quantization codes.
		v := uint32(0)
		for rng.Float64() < 0.5 && v < 40 {
			v++
		}
		syms[i] = v
	}
	blob := Compress(syms)
	if len(blob) >= 2*len(syms) {
		t.Errorf("no compression achieved: %d bytes for %d symbols", len(blob), len(syms))
	}
	roundTrip(t, syms)
}

func TestSparseAlphabet(t *testing.T) {
	roundTrip(t, []uint32{0, 1000000, 5, 1000000, 0, 42})
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		syms := make([]uint32, len(raw))
		for i, v := range raw {
			syms[i] = uint32(v)
		}
		blob := Compress(syms)
		got, err := Decompress(blob)
		if err != nil || len(got) != len(syms) {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionBeatsRawOnRealisticCodes(t *testing.T) {
	// Mostly-zero quantization codes: Huffman should get close to the
	// entropy, far below 4 bytes/symbol.
	rng := rand.New(rand.NewSource(32))
	syms := make([]uint32, 100000)
	for i := range syms {
		if rng.Float64() < 0.9 {
			syms[i] = 0
		} else {
			syms[i] = uint32(rng.Intn(16))
		}
	}
	blob := Compress(syms)
	if len(blob) > len(syms) {
		t.Errorf("blob %d bytes for %d mostly-zero symbols", len(blob), len(syms))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := Decompress(nil); err == nil {
		t.Error("nil input should error")
	}
	blob := Compress([]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := Decompress(blob[:2]); err == nil {
		t.Error("truncated input should error")
	}
}

func TestZigzag(t *testing.T) {
	cases := map[int64]uint32{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, 100: 200, -100: 199}
	for v, want := range cases {
		if got := Zigzag(v); got != want {
			t.Errorf("Zigzag(%d) = %d, want %d", v, got, want)
		}
		if back := Unzigzag(want); back != v {
			t.Errorf("Unzigzag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestZigzagRoundTripQuick(t *testing.T) {
	f := func(v int32) bool {
		return Unzigzag(Zigzag(int64(v))) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOutput(t *testing.T) {
	syms := []uint32{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := Compress(syms)
	b := Compress(syms)
	if string(a) != string(b) {
		t.Error("Compress not deterministic")
	}
}

// BenchmarkHuffman exercises the full encode+decode cycle on realistic
// quantization-code distributions (run with -benchmem to see the codebook
// allocation profile). The "sparse" variant forces the map fallback path
// with symbols above the dense table range.
func BenchmarkHuffman(b *testing.B) {
	bench := func(name string, gen func(rng *rand.Rand) uint32) {
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(35))
			syms := make([]uint32, 1<<16)
			for i := range syms {
				syms[i] = gen(rng)
			}
			b.SetBytes(int64(len(syms) * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blob := Compress(syms)
				if _, err := Decompress(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bench("dense", func(rng *rand.Rand) uint32 {
		// Geometric-ish, like zigzagged quantization codes.
		v := uint32(0)
		for rng.Float64() < 0.5 && v < 40 {
			v++
		}
		return v
	})
	bench("sparse", func(rng *rand.Rand) uint32 {
		if rng.Float64() < 0.01 {
			return 4096 + uint32(rng.Intn(1<<20))
		}
		return uint32(rng.Intn(64))
	})
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(syms)
	}
}

func BenchmarkDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	blob := Compress(syms)
	b.SetBytes(int64(len(syms) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}
