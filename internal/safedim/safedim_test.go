package safedim

import (
	"math"
	"testing"
)

func TestProduct(t *testing.T) {
	cases := []struct {
		dims []int
		want int
		ok   bool
	}{
		{nil, 1, true},
		{[]int{7}, 7, true},
		{[]int{3, 4}, 12, true},
		{[]int{128, 256, 512}, 128 * 256 * 512, true},
		{[]int{0, 1 << 62}, 0, true},
		{[]int{1 << 62, 0}, 0, true},
		{[]int{-1, 4}, 0, false},
		{[]int{4, -1}, 0, false},
		{[]int{1 << 32, 1 << 32}, 0, false},
		{[]int{math.MaxInt, 2}, 0, false},
		{[]int{math.MaxInt, 1}, math.MaxInt, true},
		// The classic corrupt-header shape: three dims that each pass a
		// per-dimension bound but whose product wraps.
		{[]int{1 << 28, 1 << 28, 1 << 28}, 0, false},
	}
	for _, c := range cases {
		got, ok := Product(c.dims...)
		if got != c.want || ok != c.ok {
			t.Errorf("Product(%v) = (%d, %v), want (%d, %v)", c.dims, got, ok, c.want, c.ok)
		}
	}
}

func TestMustProduct(t *testing.T) {
	if got := MustProduct(6, 7); got != 42 {
		t.Fatalf("MustProduct(6,7) = %d, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustProduct did not panic on overflow")
		}
	}()
	MustProduct(1<<32, 1<<32)
}
