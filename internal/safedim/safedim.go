// Package safedim provides overflow-checked products of dimension and
// length values. It is the blessed allocation-sizing helper enforced by
// the overflowmul analyzer (cmd/topolint): a slice must never be sized
// by a raw nx*ny*nz product, because a corrupt or adversarial header
// whose per-dimension values pass individual bounds checks can still
// overflow the product into a small (or negative) length that later
// slicing trusts.
//
// Two entry points cover the two trust levels in the tree:
//
//   - Product, for values derived from untrusted input that has not yet
//     been range-validated: the caller handles the failure as a data
//     error.
//   - MustProduct, for dimensions the caller has already validated
//     (encode paths, constructors whose contract requires sane sizes,
//     decode paths downstream of a successful header validation): an
//     overflow there is a programmer error, reported by panic.
package safedim

import "math"

// Product returns the product of dims, reporting ok=false when any
// dimension is negative or the product overflows int. A zero dimension
// yields (0, true). Product of no dimensions is (1, true).
func Product(dims ...int) (n int, ok bool) {
	p := uint64(1)
	for _, d := range dims {
		if d < 0 {
			return 0, false
		}
		if d != 0 && p > math.MaxInt/uint64(d) {
			return 0, false
		}
		p *= uint64(d)
	}
	return int(p), true
}

// MustProduct is Product for already-validated dimensions: encode paths
// and allocation sites downstream of a successful header validation
// (core's vertexCount, the guarded varint reads). Reaching the panic
// means a caller skipped validation — a programmer error, not a data
// error.
func MustProduct(dims ...int) int {
	n, ok := Product(dims...)
	if !ok {
		// invariant: callers pass pre-validated dimensions; overflow here
		// is a missed validation upstream, never a property of the data.
		panic("safedim: dimension product overflows int")
	}
	return n
}
