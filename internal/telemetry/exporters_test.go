package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations 1..100: p50 ≈ 50, p90 ≈ 90, p99 ≈ 99, all within
	// one power-of-two bucket of truth.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	within2x := func(got, want int64) bool { return got >= want/2 && got <= 2*want }
	if !within2x(s.P50, 50) || !within2x(s.P90, 90) || !within2x(s.P99, 99) {
		t.Errorf("quantiles p50=%d p90=%d p99=%d, want within 2x of 50/90/99", s.P50, s.P90, s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: %d %d %d", s.P50, s.P90, s.P99)
	}
	if q := s.Quantile(0); q != s.Min {
		t.Errorf("q0 = %d, want min %d", q, s.Min)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("q1 = %d, want max %d", q, s.Max)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d", got)
	}
	// Live handle path.
	if got := h.Quantile(0.5); got != s.P50 {
		t.Errorf("Histogram.Quantile(0.5) = %d, want %d", got, s.P50)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := &Histogram{}
	h.Observe(1000)
	s := h.snapshot()
	if s.P50 != 1000 || s.P99 != 1000 {
		t.Errorf("single-value quantiles = %d/%d, want 1000 (clamped to min/max)", s.P50, s.P99)
	}
}

func TestQuantileRandomMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(1 << 20))
	}
	s := h.snapshot()
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %g = %d < previous %d", q, v, prev)
		}
		if v < s.Min || v > s.Max {
			t.Fatalf("quantile %g = %d outside [%d,%d]", q, v, s.Min, s.Max)
		}
		prev = v
	}
}

// TestEndedSpanGuards pins the satellite contract: Child and AddChild on
// a nil or ended span are safe no-ops, like the rest of the nil-safe API.
func TestEndedSpanGuards(t *testing.T) {
	c := New()
	c.SetClock(fakeClock(time.Millisecond))
	sp := c.Span("root")
	sp.End()
	if got := sp.Child("late"); got != nil {
		t.Error("Child on an ended span must return nil")
	}
	sp.AddChild("late-virtual", time.Second)
	sp.End() // double End stays a no-op
	snap := c.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 0 {
		t.Errorf("ended span grew children: %+v", snap.Spans)
	}
	// The nil handle returned by the guard keeps degrading safely.
	var nilSpan *Span
	if nilSpan.Child("x") != nil {
		t.Error("Child on nil span must return nil")
	}
	nilSpan.AddChild("x", time.Second)
	nilSpan.End()
}

func buildSampleCollector() *Collector {
	c := New()
	c.SetClock(fakeClock(time.Millisecond))
	run := c.Span("shm.compress2d")
	for i := 0; i < 4; i++ {
		s := run.Child("slab" + string(rune('0'+i)))
		s.End()
	}
	run.AddChild("exchange", 5*time.Millisecond)
	run.End()
	c.Counter("shm.compress2d.slab.retries").Add(2)
	c.Gauge("shm.compress2d.workers").Set(4)
	h := c.Histogram("core.2d.bound_exp_sym")
	for v := int64(1); v <= 64; v++ {
		h.Observe(v)
	}
	return c
}

func TestWritePrometheus(t *testing.T) {
	c := buildSampleCollector()
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE topozip_shm_compress2d_slab_retries_total counter",
		"topozip_shm_compress2d_slab_retries_total 2",
		"# TYPE topozip_shm_compress2d_workers gauge",
		"topozip_shm_compress2d_workers 4",
		"# TYPE topozip_core_2d_bound_exp_sym histogram",
		`topozip_core_2d_bound_exp_sym_bucket{le="+Inf"} 64`,
		"topozip_core_2d_bound_exp_sym_count 64",
		"topozip_core_2d_bound_exp_sym_p99",
		"# TYPE topozip_stage_latency_seconds summary",
		`topozip_stage_latency_seconds{stage="slab",quantile="0.99"}`,
		`topozip_stage_latency_seconds_count{stage="slab"} 4`,
		`topozip_stage_latency_seconds{stage="shm.compress2d",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at count.
	if strings.Count(out, "_bucket{le=") < 3 {
		t.Errorf("expected multiple le buckets:\n%s", out)
	}
	// A second export is byte-identical (ended spans, fixed instruments).
	var buf2 bytes.Buffer
	if err := c.WritePrometheus(&buf2, ""); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("Prometheus export is not deterministic")
	}
	// Nil collector: no output, no error.
	var nilC *Collector
	var buf3 bytes.Buffer
	if err := nilC.WritePrometheus(&buf3, ""); err != nil || buf3.Len() != 0 {
		t.Errorf("nil collector wrote %q, err %v", buf3.String(), err)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := buildSampleCollector()
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Root + 4 slab children + 1 virtual child.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "shm.compress2d" || doc.TraceEvents[0].Ph != "X" {
		t.Errorf("root event = %+v", doc.TraceEvents[0])
	}
	for i, ev := range doc.TraceEvents {
		if ev.TID != 1 || ev.PID != 1 {
			t.Errorf("event %d on pid/tid %d/%d, want 1/1", i, ev.PID, ev.TID)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %d has negative ts/dur: %+v", i, ev)
		}
	}
	// The virtual child lays out after its siblings, not at ts 0.
	last := doc.TraceEvents[5]
	if last.Name != "exchange" || last.Dur != 5000 {
		t.Errorf("virtual child = %+v, want exchange with dur 5000µs", last)
	}
	// Nil collector still writes a well-formed empty document.
	var buf2 bytes.Buffer
	var nilC *Collector
	if err := nilC.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `"traceEvents": []`) {
		t.Errorf("nil trace = %s", buf2.String())
	}
}

func TestManifestRoundTripAndRender(t *testing.T) {
	dir := t.TempDir()
	archive := filepath.Join(dir, "field.szp")
	path := ManifestPath(archive)
	if path != archive+".manifest.json" {
		t.Fatalf("ManifestPath = %q", path)
	}
	m := NewManifest("topozip")
	m.Command = "compress -in field.f32"
	m.Dataset = ManifestDataset{Dims: []int{64, 48}, Components: 2, RawBytes: 64 * 48 * 8, SHA256: strings.Repeat("ab", 32)}
	m.Codec = ManifestCodec{Name: "topozip-cp", FormatVersion: 2, Spec: "ST4", Tau: 0.05, TauRelative: 0.01}
	m.Run = ManifestRun{
		WallNS: int64(120 * time.Millisecond), ThroughputMBps: 123.4,
		CompressedBytes: 4096, Ratio: 6, Slabs: 8, Workers: 4,
		Retries: 2, Panics: 1, DegradedSlabs: []int{3},
		Degradation: "shm: 2 retries (1 panics, 0 timeouts), 1/8 slabs degraded to lossless [3]",
	}
	m.Bounds = ManifestBounds{Vertices: 3072, Lossless: 100, SpecTrials: 900, SpecFails: 40,
		BoundExp: &HistSnapshot{Count: 10, Min: 1, Max: 32, P50: 8, P90: 16, P99: 32}}
	m.Fidelity = &ManifestFidelity{TP: 27, Preserved: true, PSNRdB: 55.5, VerifiedUnixNS: m.CreatedUnixNS}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Codec.Spec != "ST4" || back.Run.Slabs != 8 || back.Fidelity == nil || !back.Fidelity.Preserved {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if len(back.Run.DegradedSlabs) != 1 || back.Run.DegradedSlabs[0] != 3 {
		t.Errorf("degraded slabs = %v", back.Run.DegradedSlabs)
	}
	var buf bytes.Buffer
	if err := back.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"topozip", "dims [64 48]", "spec ST4", "8 slabs on 4 workers",
		"degradation:", "p50=8 p90=16 p99=32", "TP=27", "preserved"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// A future schema version must be refused, not misread.
	m.SchemaVersion = ManifestSchemaVersion + 1
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("newer schema version must fail to load")
	}
}
