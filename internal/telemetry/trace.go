package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: the span forest rendered as "X" (complete)
// events in the Trace Event Format, loadable by Perfetto and
// chrome://tracing. Each root span gets its own track (tid); timestamps
// are microseconds relative to the collector epoch. Virtual spans
// (AddChild, StartNS = -1) have no wall start, so they are laid out
// sequentially from their parent's start — the durations stay truthful,
// only their placement is synthetic.

// traceEvent is one Trace Event Format entry.
type traceEvent struct {
	Name  string  `json:"name"`
	Ph    string  `json:"ph"`
	TsUS  float64 `json:"ts"`
	DurUS float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the collector's span forest as a Chrome
// trace-event JSON document. A nil collector writes an empty trace.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceSnapshot(w, c.Snapshot())
}

// WriteChromeTraceSnapshot renders an already-taken snapshot.
func WriteChromeTraceSnapshot(w io.Writer, snap Snapshot) error {
	doc := traceDoc{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for i, root := range snap.Spans {
		appendTraceEvents(&doc.TraceEvents, root, i+1, startOrZero(root))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func startOrZero(s SpanSnapshot) int64 {
	if s.StartNS >= 0 {
		return s.StartNS
	}
	return 0
}

// appendTraceEvents emits s at its wall start (or the synthetic fallback
// for virtual spans) and recurses into children, advancing a cursor so
// virtual siblings stack one after another instead of overlapping.
func appendTraceEvents(out *[]traceEvent, s SpanSnapshot, tid int, fallbackNS int64) {
	start := s.StartNS
	if start < 0 {
		start = fallbackNS
	}
	*out = append(*out, traceEvent{
		Name:  s.Name,
		Ph:    "X",
		TsUS:  float64(start) / 1e3,
		DurUS: float64(s.DurationNS) / 1e3,
		PID:   1,
		TID:   tid,
	})
	cursor := start
	for _, k := range s.Children {
		appendTraceEvents(out, k, tid, cursor)
		if k.StartNS >= 0 {
			cursor = k.StartNS + k.DurationNS
		} else {
			cursor += k.DurationNS
		}
	}
}
