// Package telemetry is the instrumentation substrate of the compression
// pipeline: a registry of named counters, gauges, and power-of-two-bucket
// histograms, plus stage-scoped spans forming a hierarchical wall-time
// tree (see span.go) and deterministic text/JSON renderers (see sink.go).
//
// The package is stdlib-only and allocation-conscious. Its central design
// point is that a disabled collector is a nil pointer: every accessor and
// every mutator is safe to call on a nil receiver and short-circuits
// immediately, so an instrumented hot loop pays exactly one nil check per
// event when telemetry is off. Instruments are resolved by name once, at
// setup time (e.g. in an encoder constructor), and the resulting possibly
// nil handles are used unconditionally afterwards:
//
//	ctr := tel.Counter("core.2d.spec_trials") // nil when tel == nil
//	for ... { ctr.Inc() }                     // no-op nil check when disabled
//
// All instruments are safe for concurrent use; the simulated MPI ranks
// update shared counters from many goroutines.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector owns the instrument registry and the span tree of one run.
// The zero value is not usable; construct with New. A nil *Collector is
// the disabled state: all methods are nil-safe no-ops.
type Collector struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span          // root-level spans, in creation order
	now      func() time.Time // injectable clock for deterministic tests

	// epoch is the start time of the first root span; every span's
	// exported start offset (SpanSnapshot.StartNS) is relative to it, so
	// trace exports are deterministic under an injected clock.
	epoch    time.Time
	epochSet bool
}

// New returns an enabled collector.
func New() *Collector {
	return &Collector{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		now:      time.Now,
	}
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// SetClock replaces the wall clock, for deterministic span durations in
// tests.
func (c *Collector) SetClock(now func() time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

func (c *Collector) clock() time.Time {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	return now()
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) on a nil collector.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.counters[name]
	if !ok {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// Gauge returns the named gauge, creating it on first use.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.gauges[name]
	if !ok {
		g = &Gauge{}
		c.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hists[name]
	if !ok {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// sortedNames returns the keys of a map in lexicographic order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing event count. A nil *Counter is a
// no-op handle.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddSince adds the wall time elapsed since t0, in nanoseconds. It is the
// accumulating-stopwatch idiom for stages too fine-grained for spans.
func (c *Counter) AddSince(t0 time.Time) {
	if c == nil {
		return
	}
	c.v.Add(int64(time.Since(t0)))
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-writer-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is greater than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds observations ≤ 0, bucket k holds (2^(k-1), 2^k].
const histBuckets = 65

// Histogram counts observations in power-of-two buckets. It tracks count,
// sum, min, and max exactly; the buckets give the shape of the
// distribution without per-value storage.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket: 0 for v ≤ 0; bucket
// k ≥ 1 covers (2^(k-2), 2^(k-1)], so the bucket's inclusive upper bound
// is 2^(k-1).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v-1)) + 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; racing observers correct below.
		h.min.Store(v)
		h.max.Store(v)
	}
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution from the power-of-two buckets, interpolating linearly
// inside the selected bucket and clamping to the exact [min, max]. The
// estimate is exact for q=0 and q=1 and carries at most one-bucket
// (factor-of-two) error elsewhere — enough to tell a 2µs p99 from a 2ms
// one. Returns 0 on a nil handle or an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}
