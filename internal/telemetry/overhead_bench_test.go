package telemetry_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fixed"
	"repro/internal/telemetry"
)

// The pair BenchmarkCompressOceanTelemetryOff / ...On quantifies the cost
// of the instrumentation on a Table V-style workload. "Off" runs the
// instrumented code with a nil collector — the configuration the ≤2%
// overhead budget applies to (every event is a single nil check); "On"
// shows the full recording cost for comparison:
//
//	go test -bench=CompressOceanTelemetry -benchtime=5x ./internal/telemetry/
func benchCompressOcean(b *testing.B, tel *telemetry.Collector) {
	f := datagen.Ocean(256, 192)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * 2 * len(f.U)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompressField2D(f, tr, core.Options{Tau: 0.05, Spec: core.ST2, Tel: tel}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressOceanTelemetryOff(b *testing.B) {
	benchCompressOcean(b, nil)
}

func BenchmarkCompressOceanTelemetryOn(b *testing.B) {
	benchCompressOcean(b, telemetry.New())
}

// Micro-benchmarks of the disabled fast path itself.

func BenchmarkDisabledCounterInc(b *testing.B) {
	var c *telemetry.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var h *telemetry.Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	c := telemetry.New().Counter("bench")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := telemetry.New().Histogram("bench")
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
