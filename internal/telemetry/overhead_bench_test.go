package telemetry_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fixed"
	"repro/internal/flightrec"
	"repro/internal/telemetry"
)

// The pair BenchmarkCompressOceanTelemetryOff / ...On quantifies the cost
// of the instrumentation on a Table V-style workload. "Off" runs the
// instrumented code with a nil collector — the configuration the ≤2%
// overhead budget applies to (every event is a single nil check); "On"
// shows the full recording cost for comparison:
//
//	go test -bench=CompressOceanTelemetry -benchtime=5x ./internal/telemetry/
func benchCompressOcean(b *testing.B, tel *telemetry.Collector) {
	f := datagen.Ocean(256, 192)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * 2 * len(f.U)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompressField2D(f, tr, core.Options{Tau: 0.05, Spec: core.ST2, Tel: tel}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressOceanTelemetryOff(b *testing.B) {
	benchCompressOcean(b, nil)
}

func BenchmarkCompressOceanTelemetryOn(b *testing.B) {
	benchCompressOcean(b, telemetry.New())
}

// The pair BenchmarkCompressNekFlightRecOff / ...On is the observability
// overhead gate's workload: the ST4 kernel on a Nek5000 cube, with the
// flight recorder (and full telemetry) disabled versus enabled. "Off" is
// the default production configuration — a nil recorder and collector,
// one nil check per event — and must stay within seed noise; "On" bounds
// the fully instrumented cost, which scripts/overheadgate.sh holds to
// the ≤3% budget:
//
//	go test -bench=CompressNekFlightRec -benchtime=3x ./internal/telemetry/
func benchCompressNek(b *testing.B, tel *telemetry.Collector, rec *flightrec.Recorder) {
	f := datagen.Nek5000(48, 48, 48)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * 3 * len(f.U)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.Options{Tau: 0.05, Spec: core.ST4, Tel: tel, Rec: rec, RecSlab: -1}
		if _, err := core.CompressField3D(f, tr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressNekFlightRecOff(b *testing.B) {
	benchCompressNek(b, nil, nil)
}

func BenchmarkCompressNekFlightRecOn(b *testing.B) {
	benchCompressNek(b, telemetry.New(), flightrec.New(flightrec.DefaultCapacity))
}

// Micro-benchmarks of the disabled fast path itself.

func BenchmarkDisabledCounterInc(b *testing.B) {
	var c *telemetry.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var h *telemetry.Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	c := telemetry.New().Counter("bench")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := telemetry.New().Histogram("bench")
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
