package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector must report disabled")
	}
	ctr := c.Counter("x")
	ctr.Inc()
	ctr.Add(5)
	ctr.AddSince(time.Now())
	if ctr.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := c.Gauge("g")
	g.Set(3)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	h := c.Histogram("h")
	h.Observe(42)
	if h.Count() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	sp := c.Span("root")
	sub := sp.Child("sub")
	sub.AddChild("leaf", time.Second)
	sub.End()
	sp.End()
	c.SetClock(time.Now)
	snap := c.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil collector snapshot must be empty")
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	c := New()
	if c.Counter("a") != c.Counter("a") {
		t.Error("same counter name must resolve to the same handle")
	}
	if c.Gauge("a") != c.Gauge("a") {
		t.Error("same gauge name must resolve to the same handle")
	}
	if c.Histogram("a") != c.Histogram("a") {
		t.Error("same histogram name must resolve to the same handle")
	}
}

// TestConcurrentUpdates exercises every instrument from many goroutines;
// run with -race.
func TestConcurrentUpdates(t *testing.T) {
	c := New()
	ctr := c.Counter("ctr")
	g := c.Gauge("g")
	h := c.Histogram("h")
	root := c.Span("root")
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := root.Child("worker")
			for i := 1; i <= perWorker; i++ {
				ctr.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(int64(i))
				// Interleave registry lookups with updates.
				c.Counter("ctr").Add(1)
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	root.End()
	if got := ctr.Value(); got != 2*workers*perWorker {
		t.Errorf("counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge max = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	snap := c.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != workers {
		t.Errorf("span tree: got %d roots, %d children", len(snap.Spans), len(snap.Spans[0].Children))
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 4}, {9, 5},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 100, -7} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 99 || s.Min != -7 || s.Max != 100 {
		t.Errorf("snapshot = %+v", s)
	}
	// Buckets: ≤0, then one per power-of-two range up to (64,128].
	want := []Bucket{{0, 1}, {1, 1}, {2, 1}, {4, 1}, {128, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

// fakeClock advances a fixed step on every reading, making span durations
// (and therefore the JSON document) fully deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * step)
		n++
		return t
	}
}

const goldenJSON = `{
  "counters": {
    "core.2d.nospec.lossless": 2,
    "core.2d.nospec.spec_trials": 7
  },
  "gauges": {
    "run.ranks": 4
  },
  "histograms": {
    "core.2d.bound_exp": {
      "count": 3,
      "sum": 13,
      "min": 1,
      "max": 8,
      "p50": 3,
      "p90": 7,
      "p99": 8,
      "buckets": [
        {
          "hi": 1,
          "n": 1
        },
        {
          "hi": 4,
          "n": 1
        },
        {
          "hi": 8,
          "n": 1
        }
      ]
    }
  },
  "spans": [
    {
      "name": "compress",
      "duration_ns": 3000000,
      "children": [
        {
          "name": "cp-precompute",
          "start_ns": 1000000,
          "duration_ns": 1000000,
          "children": [
            {
              "name": "exchange",
              "start_ns": -1,
              "duration_ns": 5000000
            }
          ]
        }
      ]
    }
  ]
}
`

func TestGoldenJSON(t *testing.T) {
	c := New()
	c.SetClock(fakeClock(time.Millisecond))
	sp := c.Span("compress")         // clock reading 0: starts at t=0
	sub := sp.Child("cp-precompute") // clock reading 1: starts at t=1ms
	sub.AddChild("exchange", 5*time.Millisecond)
	sub.End() // clock reading 2: ends at t=2ms → 1ms
	sp.End()  // clock reading 3: ends at t=3ms → 3ms
	c.Counter("core.2d.nospec.spec_trials").Add(7)
	c.Counter("core.2d.nospec.lossless").Add(2)
	c.Gauge("run.ranks").Set(4)
	h := c.Histogram("core.2d.bound_exp")
	for _, v := range []int64{1, 4, 8} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSON {
		t.Errorf("JSON mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenJSON)
	}
	// A second snapshot of the same collector state yields the same
	// metric values (spans of an ended tree are fixed too, but each
	// snapshot reads the injected clock once).
	snap := c.Snapshot()
	if snap.Counters["core.2d.nospec.spec_trials"] != 7 {
		t.Error("snapshot must be repeatable")
	}
}

func TestWriteTextRendersTreeAndMetrics(t *testing.T) {
	c := New()
	c.SetClock(fakeClock(time.Millisecond))
	sp := c.Span("compress")
	sub := sp.Child("derive")
	sub.End()
	sp.End()
	c.Counter("a.count").Add(3)
	c.Gauge("b.gauge").Set(9)
	c.Histogram("c.hist").Observe(5)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"compress", "  derive", "a.count", "b.gauge", "c.hist"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestEncodeJSONLine(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeJSONLine(&buf, struct {
		TP int `json:"tp"`
		FP int `json:"fp"`
	}{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"tp":3,"fp":0}`+"\n" {
		t.Errorf("EncodeJSONLine = %q", got)
	}
}

func TestUnendedSpanReportsElapsed(t *testing.T) {
	c := New()
	c.SetClock(fakeClock(time.Millisecond))
	c.Span("open") // t=0
	snap := c.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].DurationNS <= 0 {
		t.Errorf("open span should report elapsed time, got %+v", snap.Spans)
	}
}
