package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Snapshot is the exported state of a collector: every instrument by
// name, plus the span forest. Its JSON encoding is deterministic for a
// given set of recorded values — struct fields encode in declaration
// order and map keys are sorted by encoding/json — which is what makes
// metrics files diffable across runs and usable as golden test outputs.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot          `json:"spans,omitempty"`
}

// HistSnapshot summarizes one histogram. Buckets lists only non-empty
// buckets, in increasing value order. P50/P90/P99 are quantile estimates
// interpolated from the power-of-two buckets (see Quantile); all zero
// when the histogram is empty.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts:
// the target rank q·count is located in the cumulative bucket walk and
// interpolated linearly between the bucket's bounds, then clamped to the
// exact [Min, Max]. The ≤0 bucket reports Min (its members are not
// resolvable further). Returns 0 for an empty histogram.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := float64(0)
	v := h.Max
	for _, b := range h.Buckets {
		n := float64(b.N)
		if cum+n >= rank {
			if b.Hi <= 0 {
				v = h.Min
				break
			}
			lo := b.Hi / 2
			if b.Hi == 1 {
				lo = 0
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			v = lo + int64(frac*float64(b.Hi-lo)+0.5)
			break
		}
		cum += n
	}
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	return v
}

// Bucket is one non-empty power-of-two histogram bucket: Hi is the
// inclusive upper bound (0 for the ≤0 bucket), N the observation count.
type Bucket struct {
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// SpanSnapshot is one node of the exported span tree. StartNS is the
// span's start offset relative to the collector's epoch (the first root
// span's start), or -1 for virtual spans recorded via AddChild, which
// carry a duration but no wall-clock start.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartNS    int64          `json:"start_ns,omitempty"`
	DurationNS int64          `json:"duration_ns"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot exports the collector's current state. A nil collector yields
// a zero snapshot.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	now := c.clock()
	c.mu.Lock()
	counters := make(map[string]*Counter, len(c.counters))
	for n, ctr := range c.counters {
		counters[n] = ctr
	}
	gauges := make(map[string]*Gauge, len(c.gauges))
	for n, g := range c.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(c.hists))
	for n, h := range c.hists {
		hists[n] = h
	}
	spans := make([]*Span, len(c.spans))
	copy(spans, c.spans)
	epoch := c.epoch
	c.mu.Unlock()

	var snap Snapshot
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for n, ctr := range counters {
			snap.Counters[n] = ctr.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for n, g := range gauges {
			snap.Gauges[n] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistSnapshot, len(hists))
		for n, h := range hists {
			snap.Histograms[n] = h.snapshot()
		}
	}
	for _, s := range spans {
		snap.Spans = append(snap.Spans, s.snapshot(now, epoch))
	}
	return snap
}

func (h *Histogram) snapshot() HistSnapshot {
	out := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if out.Count > 0 {
		out.Min = h.min.Load()
		out.Max = h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		hi := int64(0)
		if i > 0 {
			hi = 1 << uint(i-1)
		}
		out.Buckets = append(out.Buckets, Bucket{Hi: hi, N: n})
	}
	if out.Count > 0 {
		out.P50 = out.Quantile(0.50)
		out.P90 = out.Quantile(0.90)
		out.P99 = out.Quantile(0.99)
	}
	return out
}

// WriteJSON writes the snapshot as one indented, deterministic JSON
// document.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot())
}

// EncodeJSONLine writes v as a single compact JSON line followed by a
// newline. Determinism comes from encoding/json's field-order and
// sorted-map-key guarantees; CLI summaries (topozip verify) and the
// metrics files share this writer.
func EncodeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the snapshot for humans: the span tree with
// durations, then counters, gauges, and histograms sorted by name.
func (c *Collector) WriteText(w io.Writer) error {
	snap := c.Snapshot()
	for _, s := range snap.Spans {
		if err := writeSpanText(w, s, 0); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(snap.Counters) {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(snap.Gauges) {
		if _, err := fmt.Fprintf(w, "%-44s %d (gauge)\n", n, snap.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(snap.Histograms) {
		h := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "%-44s n=%d sum=%d min=%d max=%d p50=%d p90=%d p99=%d\n",
			n, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P90, h.P99); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "    ≤%-12d %d\n", b.Hi, b.N); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSpanText(w io.Writer, s SpanSnapshot, depth int) error {
	if _, err := fmt.Fprintf(w, "%s%s %v\n",
		strings.Repeat("  ", depth), s.Name, time.Duration(s.DurationNS).Round(time.Microsecond)); err != nil {
		return err
	}
	// Deterministic ordering: children render in creation order.
	for _, k := range s.Children {
		if err := writeSpanText(w, k, depth+1); err != nil {
			return err
		}
	}
	return nil
}
