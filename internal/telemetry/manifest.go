package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Manifest is the per-run provenance record written beside every archive:
// what was compressed (dataset dims and content hash), how (codec, error
// bound, speculation target, block format version), how it went (wall
// time, throughput, slab decomposition, fault-tolerance outcome, bound
// statistics), and — once topozip verify has run — the topology-fidelity
// result. It is the machine-readable answer to "which run produced this
// file and can I trust it", rendered by topozip info/verify and diffable
// across runs like every other telemetry JSON (deterministic field
// order).
type Manifest struct {
	Tool string `json:"tool"`
	// SchemaVersion identifies the manifest layout, not the block format.
	SchemaVersion int   `json:"schema_version"`
	CreatedUnixNS int64 `json:"created_unix_ns"`
	// Command is the CLI invocation that produced the archive.
	Command string `json:"command,omitempty"`

	Dataset    ManifestDataset     `json:"dataset"`
	Codec      ManifestCodec       `json:"codec"`
	Run        ManifestRun         `json:"run"`
	Bounds     ManifestBounds      `json:"bounds"`
	Predicates *ManifestPredicates `json:"predicates,omitempty"`
	Fidelity   *ManifestFidelity   `json:"fidelity,omitempty"`
	// Metrics optionally embeds the full telemetry snapshot of the run.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// ManifestSchemaVersion is the current manifest layout version.
const ManifestSchemaVersion = 1

// ManifestDataset identifies the input field.
type ManifestDataset struct {
	Dims       []int  `json:"dims"`
	Components int    `json:"components"`
	RawBytes   int64  `json:"raw_bytes"`
	SHA256     string `json:"sha256,omitempty"`
}

// ManifestCodec identifies the encoder and its settings.
type ManifestCodec struct {
	Name string `json:"name"`
	// FormatVersion is the block format version the encoder emitted.
	FormatVersion int    `json:"format_version"`
	Spec          string `json:"spec"`
	// Tau is the absolute error bound the encoder ran with; TauRelative
	// holds the user's range-relative input when -abs was not given.
	Tau         float64 `json:"tau"`
	TauRelative float64 `json:"tau_relative,omitempty"`
}

// ManifestRun records the execution outcome.
type ManifestRun struct {
	WallNS          int64   `json:"wall_ns"`
	ThroughputMBps  float64 `json:"throughput_mbps"`
	CompressedBytes int64   `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
	Slabs           int     `json:"slabs,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	// Out-of-core outcome: the slab-window size the streaming pipeline
	// ran with and the peak bytes it held admitted at once (raw slab
	// buffers plus sealed-but-unflushed blobs). Zero for in-memory runs.
	Window          int   `json:"window,omitempty"`
	PeakWindowBytes int64 `json:"peak_window_bytes,omitempty"`
	// Fault-tolerance outcome: recovered attempt failures and the slabs
	// that degraded to the lossless escape encoding.
	Retries       int    `json:"retries,omitempty"`
	Panics        int    `json:"panics,omitempty"`
	Timeouts      int    `json:"timeouts,omitempty"`
	DegradedSlabs []int  `json:"degraded_slabs,omitempty"`
	Degradation   string `json:"degradation,omitempty"`
	// FlightRecorder is the path of the postmortem dump, when one was
	// written.
	FlightRecorder string `json:"flight_recorder,omitempty"`
}

// ManifestBounds carries the per-vertex bound statistics of the encoder.
type ManifestBounds struct {
	Vertices    int64 `json:"vertices"`
	Lossless    int64 `json:"lossless"`
	Relaxed     int64 `json:"relaxed"`
	Literals    int64 `json:"literals"`
	SpecTrials  int64 `json:"spec_trials"`
	SpecFails   int64 `json:"spec_fails"`
	SpecCutoffs int64 `json:"spec_cutoffs"`
	// BoundExp is the bound-exponent histogram (tightness distribution of
	// the stored bounds), quantiles included.
	BoundExp *HistSnapshot `json:"bound_exp,omitempty"`
}

// ManifestPredicates records the filtered-predicate efficacy of the
// run: how many sign / quotient evaluations each certification stage
// resolved and the resulting accept rates. The stage counts per family
// sum to that family's total calls (see internal/exact/filter).
type ManifestPredicates struct {
	Orient2Fast uint64 `json:"orient2_fast"`
	Orient2Zero uint64 `json:"orient2_zero"`
	Orient2Wide uint64 `json:"orient2_wide"`

	Orient3Static uint64 `json:"orient3_static"`
	Orient3Run    uint64 `json:"orient3_run"`
	Orient3Zero   uint64 `json:"orient3_zero"`
	Orient3Exact  uint64 `json:"orient3_exact"`
	Orient3Wide   uint64 `json:"orient3_wide"`

	PsiCert     uint64 `json:"psi_cert"`
	PsiFallback uint64 `json:"psi_fallback"`

	Orient3AcceptRate float64 `json:"orient3_accept_rate"`
	PsiCertRate       float64 `json:"psi_cert_rate"`
}

// ManifestFidelity is the verify outcome: critical-point preservation
// counts and pointwise error metrics.
type ManifestFidelity struct {
	TP             int     `json:"tp"`
	FP             int     `json:"fp"`
	FN             int     `json:"fn"`
	FT             int     `json:"ft"`
	MaxAbsError    float64 `json:"max_abs_error"`
	PSNRdB         float64 `json:"psnr_db"`
	Preserved      bool    `json:"preserved"`
	VerifiedUnixNS int64   `json:"verified_unix_ns"`
}

// ManifestPath derives the manifest's location from its archive's path.
func ManifestPath(archivePath string) string { return archivePath + ".manifest.json" }

// NewManifest starts a manifest stamped with the current time.
func NewManifest(tool string) *Manifest {
	return &Manifest{Tool: tool, SchemaVersion: ManifestSchemaVersion, CreatedUnixNS: time.Now().UnixNano()}
}

// WriteFile writes the manifest as indented, deterministic JSON.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if m.SchemaVersion > ManifestSchemaVersion {
		return nil, fmt.Errorf("manifest %s: schema version %d is newer than this build understands (%d)",
			path, m.SchemaVersion, ManifestSchemaVersion)
	}
	return &m, nil
}

// Render writes the human-readable manifest summary topozip info prints.
func (m *Manifest) Render(w io.Writer) error {
	created := time.Unix(0, m.CreatedUnixNS).UTC().Format(time.RFC3339)
	if _, err := fmt.Fprintf(w, "manifest: %s schema v%d, created %s\n", m.Tool, m.SchemaVersion, created); err != nil {
		return err
	}
	hash := m.Dataset.SHA256
	if len(hash) > 12 {
		hash = hash[:12] + "…"
	}
	if _, err := fmt.Fprintf(w, "  dataset: dims %v, %d components, %d raw bytes, sha256 %s\n",
		m.Dataset.Dims, m.Dataset.Components, m.Dataset.RawBytes, hash); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  codec: %s format v%d, spec %s, tau %g\n",
		m.Codec.Name, m.Codec.FormatVersion, m.Codec.Spec, m.Codec.Tau); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  run: %v wall, %.2f MB/s, ratio %.2f",
		time.Duration(m.Run.WallNS).Round(time.Microsecond), m.Run.ThroughputMBps, m.Run.Ratio); err != nil {
		return err
	}
	if m.Run.Slabs > 0 {
		if _, err := fmt.Fprintf(w, ", %d slabs on %d workers", m.Run.Slabs, m.Run.Workers); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if m.Run.Degradation != "" {
		if _, err := fmt.Fprintf(w, "  degradation: %s\n", m.Run.Degradation); err != nil {
			return err
		}
	}
	if m.Run.FlightRecorder != "" {
		if _, err := fmt.Fprintf(w, "  flight recorder: %s\n", m.Run.FlightRecorder); err != nil {
			return err
		}
	}
	b := m.Bounds
	if _, err := fmt.Fprintf(w, "  bounds: %d vertices (%d lossless, %d relaxed, %d literals), speculation %d/%d/%d trials/fails/cutoffs\n",
		b.Vertices, b.Lossless, b.Relaxed, b.Literals, b.SpecTrials, b.SpecFails, b.SpecCutoffs); err != nil {
		return err
	}
	if p := m.Predicates; p != nil {
		if _, err := fmt.Fprintf(w, "  predicates: 2D %d fast / %d wide; 3D %d static + %d run + %d zero accepts, %d exact, %d wide (%.1f%% filtered); Ψ %d certified / %d exact (%.1f%%)\n",
			p.Orient2Fast, p.Orient2Wide,
			p.Orient3Static, p.Orient3Run, p.Orient3Zero, p.Orient3Exact, p.Orient3Wide,
			100*p.Orient3AcceptRate, p.PsiCert, p.PsiFallback, 100*p.PsiCertRate); err != nil {
			return err
		}
	}
	if b.BoundExp != nil && b.BoundExp.Count > 0 {
		if _, err := fmt.Fprintf(w, "  bound exponents: p50=%d p90=%d p99=%d (of %d)\n",
			b.BoundExp.P50, b.BoundExp.P90, b.BoundExp.P99, b.BoundExp.Count); err != nil {
			return err
		}
	}
	if f := m.Fidelity; f != nil {
		verdict := "NOT preserved"
		if f.Preserved {
			verdict = "preserved"
		}
		if _, err := fmt.Fprintf(w, "  fidelity: TP=%d FP=%d FN=%d FT=%d, max abs err %.6g, PSNR %.2f dB — critical points %s\n",
			f.TP, f.FP, f.FN, f.FT, f.MaxAbsError, f.PSNRdB, verdict); err != nil {
			return err
		}
	}
	return nil
}
