package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a collector
// snapshot. Counters become <ns>_<name>_total counter families, gauges
// become gauges, and each power-of-two histogram becomes a histogram
// family with cumulative le buckets plus _p50/_p90/_p99 gauge families
// carrying the interpolated quantile estimates. The span forest is
// aggregated into one <ns>_stage_latency_seconds summary: spans sharing a
// stage label (the span name with any trailing digits stripped, so
// "slab0".."slab15" fold into "slab") contribute their durations, and the
// summary reports exact q0.5/q0.9/q0.99 over them — the per-stage p99
// latencies the ROADMAP's topozipd item asks /metrics to serve.
//
// Output order is deterministic: families sort by name, labels render in
// fixed order, which keeps the endpoint diffable and testable.

// WritePrometheus renders the collector's current state; ns prefixes
// every family name ("topozip" when empty). A nil collector writes
// nothing and returns nil.
func (c *Collector) WritePrometheus(w io.Writer, ns string) error {
	if c == nil {
		return nil
	}
	return WritePrometheusSnapshot(w, c.Snapshot(), ns)
}

// WritePrometheusSnapshot renders an already-taken snapshot, so saved
// metrics files can be re-served without the live collector.
func WritePrometheusSnapshot(w io.Writer, snap Snapshot, ns string) error {
	if ns == "" {
		ns = "topozip"
	}
	for _, n := range sortedNames(snap.Counters) {
		name := ns + "_" + promName(n) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(snap.Gauges) {
		name := ns + "_" + promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(snap.Histograms) {
		if err := writePromHistogram(w, ns+"_"+promName(n), snap.Histograms[n]); err != nil {
			return err
		}
	}
	return writePromStages(w, ns, snap.Spans)
}

func writePromHistogram(w io.Writer, name string, h HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.N
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Hi, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, h.Count, name, h.Sum, name, h.Count); err != nil {
		return err
	}
	for _, q := range []struct {
		suffix string
		v      int64
	}{{"p50", h.P50}, {"p90", h.P90}, {"p99", h.P99}} {
		qn := name + "_" + q.suffix
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", qn, qn, q.v); err != nil {
			return err
		}
	}
	return nil
}

// writePromStages flattens the span forest into per-stage duration
// populations and renders them as one summary family.
func writePromStages(w io.Writer, ns string, spans []SpanSnapshot) error {
	stages := make(map[string][]int64)
	var walk func(s SpanSnapshot)
	walk = func(s SpanSnapshot) {
		key := stageLabel(s.Name)
		stages[key] = append(stages[key], s.DurationNS)
		for _, k := range s.Children {
			walk(k)
		}
	}
	for _, s := range spans {
		walk(s)
	}
	if len(stages) == 0 {
		return nil
	}
	name := ns + "_stage_latency_seconds"
	if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
		return err
	}
	keys := make([]string, 0, len(stages))
	for k := range stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		durs := stages[k]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		sum := int64(0)
		for _, d := range durs {
			sum += d
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			// Nearest-rank on the exact population: these spans are coarse
			// stages, so we afford exactness here (unlike the bucketed
			// hot-path histograms).
			idx := int(q*float64(len(durs)+1)) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(durs) {
				idx = len(durs) - 1
			}
			if _, err := fmt.Fprintf(w, "%s{stage=%q,quantile=\"%g\"} %g\n",
				name, k, q, float64(durs[idx])/1e9); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum{stage=%q} %g\n%s_count{stage=%q} %d\n",
			name, k, float64(sum)/1e9, name, k, len(durs)); err != nil {
			return err
		}
	}
	return nil
}

// promName maps an internal dotted metric name to the Prometheus
// identifier charset [a-zA-Z0-9_].
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// stageLabel folds numbered sibling spans ("slab0".."slab15") into one
// stage population by stripping trailing digits.
func stageLabel(name string) string {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == 0 {
		return name
	}
	return name[:i]
}
