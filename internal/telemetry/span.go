package telemetry

import (
	"sync"
	"time"
)

// Span is one node of the hierarchical wall-time tree: a named stage with
// a duration and ordered children. Spans are explicit (no goroutine-local
// context): a stage holds its span and creates children for sub-stages,
// which keeps attribution unambiguous across the simulated MPI ranks. A
// nil *Span is a no-op handle, and Child on a nil span returns nil, so a
// whole instrumented call tree degrades to nil checks when telemetry is
// off. An ended span is closed for business the same way: Child on it
// returns nil and AddChild is a no-op, so late stragglers (an abandoned
// slab attempt finishing after its deadline) cannot mutate a tree that
// has already been snapshotted.
type Span struct {
	c     *Collector
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
	virtual  bool // duration supplied by AddChild; no wall-clock start
}

// Span starts a new root-level span.
func (c *Collector) Span(name string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{c: c, name: name, start: c.clock()}
	c.mu.Lock()
	if !c.epochSet {
		c.epoch = s.start
		c.epochSet = true
	}
	c.spans = append(c.spans, s)
	c.mu.Unlock()
	return s
}

// isEnded reports whether End has fixed the span's duration.
func (s *Span) isEnded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Child starts a sub-span of s. Safe to call concurrently (the parallel
// ranks attach their phase spans to a shared parent). On a nil or ended
// span it returns nil, itself a valid no-op handle.
func (s *Span) Child(name string) *Span {
	if s == nil || s.isEnded() {
		return nil
	}
	child := &Span{c: s.c, name: name, start: s.c.clock()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddChild records an already-measured sub-stage as a completed child
// span. Used where the duration comes from elsewhere (e.g. a virtual
// clock segment of the MPI simulator) rather than from this package's
// wall clock. On a nil or ended span it is a no-op.
func (s *Span) AddChild(name string, d time.Duration) {
	if s == nil || s.isEnded() {
		return
	}
	child := &Span{c: s.c, name: name, dur: d, ended: true, virtual: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End fixes the span's duration. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.c.clock()
	s.mu.Lock()
	if !s.ended {
		s.dur = now.Sub(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// snapshot copies the subtree under lock. Unended spans report the
// duration accumulated so far. Start offsets are relative to epoch (the
// collector's first root span start); virtual spans, which have no wall
// start, export StartNS = -1.
func (s *Span) snapshot(now, epoch time.Time) SpanSnapshot {
	s.mu.Lock()
	d := s.dur
	if !s.ended {
		d = now.Sub(s.start)
	}
	virtual := s.virtual
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	out := SpanSnapshot{Name: s.name, DurationNS: int64(d)}
	if virtual {
		out.StartNS = -1
	} else {
		out.StartNS = int64(s.start.Sub(epoch))
	}
	for _, k := range kids {
		out.Children = append(out.Children, k.snapshot(now, epoch))
	}
	return out
}
