package telemetry

import (
	"sync"
	"time"
)

// Span is one node of the hierarchical wall-time tree: a named stage with
// a duration and ordered children. Spans are explicit (no goroutine-local
// context): a stage holds its span and creates children for sub-stages,
// which keeps attribution unambiguous across the simulated MPI ranks. A
// nil *Span is a no-op handle, and Child on a nil span returns nil, so a
// whole instrumented call tree degrades to nil checks when telemetry is
// off.
type Span struct {
	c     *Collector
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
}

// Span starts a new root-level span.
func (c *Collector) Span(name string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{c: c, name: name, start: c.clock()}
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
	return s
}

// Child starts a sub-span of s. Safe to call concurrently (the parallel
// ranks attach their phase spans to a shared parent).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{c: s.c, name: name, start: s.c.clock()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddChild records an already-measured sub-stage as a completed child
// span. Used where the duration comes from elsewhere (e.g. a virtual
// clock segment of the MPI simulator) rather than from this package's
// wall clock.
func (s *Span) AddChild(name string, d time.Duration) {
	if s == nil {
		return
	}
	child := &Span{c: s.c, name: name, dur: d, ended: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End fixes the span's duration. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.c.clock()
	s.mu.Lock()
	if !s.ended {
		s.dur = now.Sub(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// snapshot copies the subtree under lock. Unended spans report the
// duration accumulated so far.
func (s *Span) snapshot(now time.Time) SpanSnapshot {
	s.mu.Lock()
	d := s.dur
	if !s.ended {
		d = now.Sub(s.start)
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	out := SpanSnapshot{Name: s.name, DurationNS: int64(d)}
	for _, k := range kids {
		out.Children = append(out.Children, k.snapshot(now))
	}
	return out
}
