package hull

import (
	"math"
	"math/rand"
	"testing"
)

func square() []Point {
	return []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {3, 1}}
}

func TestConvexHullSquare(t *testing.T) {
	pts := square()
	hull, err := HullOf(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4 (%v)", len(hull), hull)
	}
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, h := range hull {
		if !want[h] {
			t.Errorf("interior point %d on hull", h)
		}
	}
}

func TestConvexHullCollinear(t *testing.T) {
	// All points on a line: the hull degenerates; it must not contain
	// interior collinear points more than once or panic.
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull, err := HullOf(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hull) == 0 || len(hull) > 4 {
		t.Fatalf("degenerate hull %v", hull)
	}
}

func TestConvexHullDuplicates(t *testing.T) {
	pts := []Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0.5, 2}, {0.5, 2}}
	hull, err := HullOf(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hull) != 3 {
		t.Fatalf("hull %v, want a triangle", hull)
	}
}

func TestConvexHullCCWOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 60)
	for i := range pts {
		pts[i] = Point{rng.Float64()*10 - 5, rng.Float64()*10 - 5}
	}
	tr, err := FitTransform(pts)
	if err != nil {
		t.Fatal(err)
	}
	hull := HullWithTransform(pts, tr)
	if len(hull) < 3 {
		t.Fatalf("hull too small: %v", hull)
	}
	// Signed area must be positive (counterclockwise).
	area := 0.0
	for i := 0; i < len(hull); i++ {
		a := pts[hull[i]]
		b := pts[hull[(i+1)%len(hull)]]
		area += a.X*b.Y - b.X*a.Y
	}
	if area <= 0 {
		t.Errorf("hull not counterclockwise (area %v)", area)
	}
}

func TestCompressPreservesHull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		}
		tr, err := FitTransform(pts)
		if err != nil {
			t.Fatal(err)
		}
		before := HullWithTransform(pts, tr)

		blob, err := Compress(pts, Options{Tau: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		after := HullWithTransform(dec, tr)
		if len(after) != len(before) {
			t.Fatalf("trial %d: hull size changed %d -> %d", trial, len(before), len(after))
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trial %d: hull changed at position %d: %v -> %v", trial, i, before, after)
			}
		}
		// Error bound holds.
		for i := range pts {
			if math.Abs(pts[i].X-dec[i].X) > 0.2 || math.Abs(pts[i].Y-dec[i].Y) > 0.2 {
				t.Fatalf("trial %d: coordinate error exceeds bound", trial)
			}
		}
	}
}

func TestCompressAchievesReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 4000)
	for i := range pts {
		pts[i] = Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	blob, err := Compress(pts, Options{Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	raw := 8 * len(pts)
	if len(blob) >= raw {
		t.Errorf("no reduction: %d raw vs %d compressed", raw, len(blob))
	}
	t.Logf("point cloud %d -> %d bytes (%.1fx)", raw, len(blob), float64(raw)/float64(len(blob)))
}

func TestHullPointsStayPut(t *testing.T) {
	// Hull vertices are heavily constrained; their positions must move
	// far less than interior points' bound allows.
	pts := square()
	tr, _ := FitTransform(pts)
	before := HullWithTransform(pts, tr)
	blob, err := Compress(pts, Options{Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	after := HullWithTransform(dec, tr)
	if len(before) != len(after) {
		t.Fatalf("hull changed: %v -> %v", before, after)
	}
}

func TestCompressErrors(t *testing.T) {
	if _, err := Compress(nil, Options{Tau: 0.1}); err == nil {
		t.Error("empty set must fail")
	}
	if _, err := Compress(square(), Options{}); err == nil {
		t.Error("zero Tau must fail")
	}
	if _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Error("garbage must fail")
	}
}

func TestDegenerateOnEdgePreserved(t *testing.T) {
	// A point exactly on a hull edge: Ψ = 0 pins it and the edge
	// endpoints; the SoS-resolved hull must be identical after
	// compression.
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 0}, {1, 1}}
	tr, _ := FitTransform(pts)
	before := HullWithTransform(pts, tr)
	blob, err := Compress(pts, Options{Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	after := HullWithTransform(dec, tr)
	if len(before) != len(after) {
		t.Fatalf("degenerate hull changed: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("degenerate hull changed: %v -> %v", before, after)
		}
	}
}
