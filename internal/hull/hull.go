// Package hull is the second case study of the sign-of-determinant
// preservation theory: error-bounded lossy compression of 2D point sets
// that preserves the convex hull exactly (same hull vertices, same order).
//
// The paper's Section II lists convex hull construction among the
// algorithms decided purely by orientation signs: a point set's hull is
// determined by the signs of orient(a, b, p) for hull edges (a, b) and
// points p. Theorem 1 therefore yields per-point perturbation bounds that
// keep every such sign — the same derivation machinery as the vector
// field compressor, applied to a different geometric predicate (and a
// concrete instance of the conclusion's "more features expressed by the
// sign of determinants").
//
// Points are quantized to the fixed-point grid; hull predicates are
// evaluated exactly with SoS tie-breaking, so degenerate inputs
// (collinear points, duplicates) are handled deterministically.
package hull

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"repro/internal/encoder"
	"repro/internal/exact"
	"repro/internal/exact/filter"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/quantizer"
	"repro/internal/safedim"
)

// Point is a 2D point.
type Point struct{ X, Y float64 }

// Options configures hull-preserving compression.
type Options struct {
	// Tau is the absolute per-coordinate error bound.
	Tau float64
}

const hullMagic = 0x4C48 // "HL"

// orientSign returns the exact SoS-resolved sign of orient(a, b, c) on
// fixed-point coordinates, with ids providing the global perturbation
// identities.
func orientSign(xs, ys []int64, a, b, c int) int {
	m := [3][3]int64{
		{xs[a], ys[a], 1},
		{xs[b], ys[b], 1},
		{xs[c], ys[c], 1},
	}
	if s := filter.Orient2Sign(&m); s != 0 {
		return s
	}
	rows := [3][]int64{m[0][:], m[1][:], m[2][:]}
	return exact.SoSOrientSign(rows[:], []int{a, b, c}, -1)
}

// ConvexHull returns the indices of the hull vertices in counterclockwise
// order (Andrew's monotone chain on exact predicates). Collinear boundary
// points are excluded (SoS decides ties deterministically).
func ConvexHull(xs, ys []int64) []int {
	n := len(xs)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if xs[a] != xs[b] {
			return xs[a] < xs[b]
		}
		if ys[a] != ys[b] {
			return ys[a] < ys[b]
		}
		return a < b
	})
	// Drop exact duplicates (identical coordinates): SoS cannot separate
	// them geometrically, and a duplicate can never be a distinct hull
	// vertex.
	uniq := idx[:0]
	for i, id := range idx {
		if i > 0 {
			p := uniq[len(uniq)-1]
			if xs[p] == xs[id] && ys[p] == ys[id] {
				continue
			}
		}
		uniq = append(uniq, id)
	}
	idx = uniq
	if len(idx) < 3 {
		return append([]int(nil), idx...)
	}
	build := func(seq []int) []int {
		var st []int
		for _, p := range seq {
			for len(st) >= 2 && orientSign(xs, ys, st[len(st)-2], st[len(st)-1], p) <= 0 {
				st = st[:len(st)-1]
			}
			st = append(st, p)
		}
		return st
	}
	lower := build(idx)
	rev := make([]int, len(idx))
	for i, id := range idx {
		rev[len(idx)-1-i] = id
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return hull
}

// Compress quantizes the point set under per-point bounds that keep the
// convex hull exactly. The derivation is coupled: points are processed in
// order and each bound is computed against current (already-quantized)
// values, mirroring Algorithm 2.
func Compress(pts []Point, opts Options) ([]byte, error) {
	if opts.Tau <= 0 {
		return nil, errors.New("hull: Tau must be positive")
	}
	n := len(pts)
	if n == 0 {
		return nil, errors.New("hull: empty point set")
	}
	coords := make([]float32, 0, safedim.MustProduct(2, n))
	for _, p := range pts {
		coords = append(coords, float32(p.X), float32(p.Y))
	}
	tr, err := fixed.Fit(coords)
	if err != nil {
		return nil, err
	}
	if opts.Tau < tr.Resolution() {
		return nil, errors.New("hull: Tau below the fixed-point resolution")
	}
	tau := tr.Bound(opts.Tau)

	xs := make([]int64, n)
	ys := make([]int64, n)
	for i, p := range pts {
		xs[i] = int64(math.RoundToEven(p.X * tr.Scale))
		ys[i] = int64(math.RoundToEven(p.Y * tr.Scale))
	}

	hull := ConvexHull(xs, ys)
	onHull := make([]bool, n)
	for _, h := range hull {
		onHull[h] = true
	}

	// Predicates to preserve: for each hull edge (a, b), the side of
	// every point p ∉ {a, b}. deriveBound(p) is the min Ψ over the
	// predicates involving p, evaluated on current values.
	deriveBound := func(p int) int64 {
		xi := tau
		for e := 0; e < len(hull); e++ {
			a := hull[e]
			b := hull[(e+1)%len(hull)]
			var psi int64
			switch p {
			case a, b:
				// p is an edge endpoint: its perturbation moves the
				// edge; every other point constrains it. Conservatively
				// take the min over all points against this edge with p
				// as the perturbed row.
				for q := 0; q < n; q++ {
					if q == a || q == b {
						continue
					}
					var other int
					if p == a {
						other = b
					} else {
						other = a
					}
					m := [][]int64{
						{xs[other], ys[other], 1},
						{xs[q], ys[q], 1},
						{xs[p], ys[p], 1},
					}
					if v := psiRow2(m); v < xi {
						xi = v
					}
				}
				continue
			default:
				m := [][]int64{
					{xs[a], ys[a], 1},
					{xs[b], ys[b], 1},
					{xs[p], ys[p], 1},
				}
				psi = psiRow2(m)
			}
			if psi < xi {
				xi = psi
			}
		}
		return xi
	}

	var expSyms, codeSyms []uint32
	var literals []byte
	emit := func(v int64, xi int64, sym uint8, snapped int64) int64 {
		code, recon, ok := quantizer.Quantize(v, 0, snapped)
		if !ok {
			codeSyms = append(codeSyms, uint32(2*quantizer.Radius))
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(int32(v)))
			literals = append(literals, b[:]...)
			return v
		}
		codeSyms = append(codeSyms, huffman.Zigzag(code))
		return recon
	}
	for p := 0; p < n; p++ {
		xi := deriveBound(p)
		sym, snapped := quantizer.BoundSym(xi, tau)
		expSyms = append(expSyms, uint32(sym))
		xs[p] = emit(xs[p], xi, sym, snapped)
		ys[p] = emit(ys[p], xi, sym, snapped)
	}

	var head []byte
	head = binary.LittleEndian.AppendUint16(head, hullMagic)
	head = binary.AppendUvarint(head, uint64(n))
	head = binary.AppendVarint(head, int64(tr.Shift))
	head = binary.AppendVarint(head, tau)
	return encoder.Pack(head, huffman.Compress(expSyms), huffman.Compress(codeSyms), literals)
}

// psiRow2 is Theorem 1 (with Lemma 1) for the last row of a 3×3
// homogeneous orientation matrix, with the integer strictness margin.
func psiRow2(m [][]int64) int64 {
	det := exact.DetN(m)
	if det.IsZero() {
		return 0
	}
	den := absI(m[0][1]-m[1][1]) + absI(m[0][0]-m[1][0])
	if den == 0 {
		return math.MaxInt64
	}
	return det.Abs().Sub(exact.Int128FromInt64(1)).DivFloor64(den)
}

func absI(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Decompress reconstructs the point set.
func Decompress(blob []byte) ([]Point, error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return nil, err
	}
	if len(sections) != 4 {
		return nil, errors.New("hull: wrong section count")
	}
	head := sections[0]
	if len(head) < 2 || binary.LittleEndian.Uint16(head) != hullMagic {
		return nil, errors.New("hull: bad magic")
	}
	head = head[2:]
	nU, k := binary.Uvarint(head)
	// The count bound keeps a corrupt header from wrapping int(nU) or
	// the 2*n stream-length product below.
	if k <= 0 || nU > 1<<40 {
		return nil, errors.New("hull: bad count")
	}
	head = head[k:]
	sv, k := binary.Varint(head)
	if k <= 0 {
		return nil, errors.New("hull: bad shift")
	}
	head = head[k:]
	shift := int(sv)
	tau, k := binary.Varint(head)
	if k <= 0 {
		return nil, errors.New("hull: bad tau")
	}
	n := int(nU)
	expSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return nil, err
	}
	codeSyms, err := huffman.Decompress(sections[2])
	if err != nil {
		return nil, err
	}
	literals := sections[3]
	if len(expSyms) != n || len(codeSyms) != 2*n {
		return nil, errors.New("hull: stream length mismatch")
	}
	tr := fixed.FromShift(shift)
	out := make([]Point, n)
	pop := func(i int, bound int64) (int64, error) {
		sym := codeSyms[i]
		if sym == uint32(2*quantizer.Radius) {
			if len(literals) < 4 {
				return 0, errors.New("hull: literal underrun")
			}
			v := int64(int32(binary.LittleEndian.Uint32(literals)))
			literals = literals[4:]
			return v, nil
		}
		return quantizer.Reconstruct(huffman.Unzigzag(sym), 0, bound), nil
	}
	for p := 0; p < n; p++ {
		bound := quantizer.BoundFromSym(uint8(expSyms[p]), tau)
		x, err := pop(2*p, bound)
		if err != nil {
			return nil, err
		}
		y, err := pop(2*p+1, bound)
		if err != nil {
			return nil, err
		}
		out[p] = Point{X: float64(x) / tr.Scale, Y: float64(y) / tr.Scale}
	}
	return out, nil
}

// FitTransform fits the fixed-point transform the compressor would use
// for a point set. Hull comparisons between original and decompressed
// data must share one transform.
func FitTransform(pts []Point) (fixed.Transform, error) {
	coords := make([]float32, 0, safedim.MustProduct(2, len(pts)))
	for _, p := range pts {
		coords = append(coords, float32(p.X), float32(p.Y))
	}
	return fixed.Fit(coords)
}

// HullWithTransform computes the hull of a float point set on the given
// fixed-point grid (the predicate the compressor preserves).
func HullWithTransform(pts []Point, tr fixed.Transform) []int {
	n := len(pts)
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i, p := range pts {
		xs[i] = int64(math.RoundToEven(p.X * tr.Scale))
		ys[i] = int64(math.RoundToEven(p.Y * tr.Scale))
	}
	return ConvexHull(xs, ys)
}

// HullOf is the convenience form of HullWithTransform with a freshly
// fitted transform.
func HullOf(pts []Point) ([]int, error) {
	tr, err := FitTransform(pts)
	if err != nil {
		return nil, err
	}
	return HullWithTransform(pts, tr), nil
}
