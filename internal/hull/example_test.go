package hull_test

import (
	"fmt"
	"log"

	"repro/internal/hull"
)

// Example compresses a point cloud while preserving its convex hull.
func Example() {
	pts := []hull.Point{
		{0, 0}, {4, 0}, {4, 4}, {0, 4}, // hull corners
		{2, 2}, {1, 3}, {3, 1}, {2, 1}, // interior
	}
	tr, err := hull.FitTransform(pts)
	if err != nil {
		log.Fatal(err)
	}
	before := hull.HullWithTransform(pts, tr)

	blob, err := hull.Compress(pts, hull.Options{Tau: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := hull.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	after := hull.HullWithTransform(dec, tr)

	fmt.Println("hull size before:", len(before))
	fmt.Println("hull size after: ", len(after))
	same := len(before) == len(after)
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	fmt.Println("hull preserved:", same)
	// Output:
	// hull size before: 4
	// hull size after:  4
	// hull preserved: true
}
