package isosurface

import (
	"math"
	"math/rand"
	"testing"
)

func synthetic(nx, ny, nz int, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	f := NewField(nx, ny, nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := 4 * math.Pi * float64(i) / float64(nx)
				y := 4 * math.Pi * float64(j) / float64(ny)
				z := 2 * math.Pi * float64(k) / float64(max(nz, 1))
				f.Data[(k*ny+j)*nx+i] = float32(math.Sin(x)*math.Cos(y)*math.Cos(z) +
					0.3*math.Sin(2*x+y) + rng.NormFloat64()*1e-3)
			}
		}
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Error("zero options must fail")
	}
	if err := (Options{Tau: 0.1}).Validate(); err == nil {
		t.Error("missing isovalues must fail")
	}
	if err := (Options{Tau: 0.1, Isovalues: []float64{0}}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	f := synthetic(48, 40, 1, 1)
	const tau = 0.02
	blob, err := Compress(f, Options{Tau: tau, Isovalues: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(float64(f.Data[i])-float64(g.Data[i])) > tau {
			t.Fatalf("error bound violated at %d", i)
		}
	}
	if len(blob) >= 4*len(f.Data) {
		t.Error("no compression achieved")
	}
}

func TestIsosurfaceTopologyPreserved2D(t *testing.T) {
	f := synthetic(64, 48, 1, 2)
	isos := []float64{-0.5, 0, 0.7}
	blob, err := Compress(f, Options{Tau: 0.1, Isovalues: isos})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, iso := range isos {
		a := CellCases(f, iso)
		b := CellCases(g, iso)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("marching-squares case changed in cell %d for isovalue %v: %04b -> %04b",
					c, iso, a[c], b[c])
			}
		}
	}
}

func TestIsosurfaceTopologyPreserved3D(t *testing.T) {
	f := synthetic(20, 18, 16, 3)
	isos := []float64{0, 0.4}
	blob, err := Compress(f, Options{Tau: 0.1, Isovalues: isos})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, iso := range isos {
		a := CellCases(f, iso)
		b := CellCases(g, iso)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("marching-cubes case changed in cell %d for isovalue %v", c, iso)
			}
		}
	}
}

func TestSideOfPreservedPropertywise(t *testing.T) {
	// Direct predicate check on every sample, for every isovalue.
	f := synthetic(48, 40, 1, 4)
	isos := []float64{-0.3, 0.1}
	blob, err := Compress(f, Options{Tau: 0.25, Isovalues: isos})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, iso := range isos {
		for i := range f.Data {
			before := sideFloat(f.Data[i], iso)
			after := sideFloat(g.Data[i], iso)
			// Samples exactly on the level are stored losslessly, so 0
			// maps to 0; otherwise strict sides must match.
			if before != after {
				t.Fatalf("sample %d crossed isovalue %v: %v -> %v (%d vs %d)",
					i, iso, f.Data[i], g.Data[i], before, after)
			}
		}
	}
}

func sideFloat(v float32, iso float64) int {
	switch {
	case float64(v) < iso:
		return -1
	case float64(v) > iso:
		return 1
	default:
		return 0
	}
}

func TestMoreIsovaluesLowerRatio(t *testing.T) {
	f := synthetic(64, 48, 1, 5)
	one, err := Compress(f, Options{Tau: 0.1, Isovalues: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Compress(f, Options{Tau: 0.1, Isovalues: []float64{-0.6, -0.3, 0, 0.3, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(many) < len(one) {
		t.Errorf("more preserved levels should cost bytes: %d vs %d", len(one), len(many))
	}
}

func TestNearestDistance(t *testing.T) {
	isos := []int64{-10, 0, 25}
	cases := map[int64]int64{-10: 0, -7: 3, 5: 5, 13: 12, 25: 0, 100: 75, -100: 90}
	for v, want := range cases {
		if got := nearestDistance(v, isos); got != want {
			t.Errorf("nearestDistance(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Error("garbage must fail")
	}
}

func TestFieldString(t *testing.T) {
	if NewField(4, 5, 1).String() != "scalar field 4x5x1" {
		t.Error("String format")
	}
}

func BenchmarkCompress(b *testing.B) {
	f := synthetic(64, 64, 1, 6)
	b.SetBytes(int64(4 * len(f.Data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(f, Options{Tau: 0.05, Isovalues: []float64{0}}); err != nil {
			b.Fatal(err)
		}
	}
}
