package isosurface_test

import (
	"fmt"
	"log"
	"math"

	"repro/internal/isosurface"
)

// Example compresses a scalar field while preserving the topology of the
// 0.5-level isosurface.
func Example() {
	f := isosurface.NewField(32, 32, 1)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			x := float64(i)/31 - 0.5
			y := float64(j)/31 - 0.5
			f.Data[j*32+i] = float32(math.Exp(-8 * (x*x + y*y)))
		}
	}
	blob, err := isosurface.Compress(f, isosurface.Options{Tau: 0.05, Isovalues: []float64{0.5}})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := isosurface.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	a := isosurface.CellCases(f, 0.5)
	b := isosurface.CellCases(dec, 0.5)
	same := true
	for c := range a {
		if a[c] != b[c] {
			same = false
		}
	}
	fmt.Println("isosurface preserved:", same)
	// Output:
	// isosurface preserved: true
}
