// Package isosurface extends the sign-of-determinant preservation theory
// to scalar fields: error-bounded lossy compression that preserves the
// topology of one or more isosurfaces.
//
// This is the extension the paper's Lemma 2 provides the bound for (and
// its conclusion announces as future work — "preserve more features
// expressed by the sign of determinants"): the side of an isovalue f on
// which a scalar sample lies is the sign of det [[f₀,1],[f,1]] = f₀ − f.
// If every vertex keeps its side for every isovalue, every cell keeps its
// marching-squares/cubes sign pattern, so the extracted isosurface keeps
// its per-cell topology exactly.
//
// The compressor reuses the pipeline of package core: per-vertex bounds
// min(τ′, minᶠ |v−f|−1), Lorenzo prediction, linear-scaling quantization
// with power-of-two bound snapping, Huffman + DEFLATE.
package isosurface

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/encoder"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/predictor"
	"repro/internal/quantizer"
	"repro/internal/safedim"
)

// Options configures isosurface-preserving compression.
type Options struct {
	// Tau is the user-specified absolute error bound.
	Tau float64
	// Isovalues are the levels whose surfaces must be preserved.
	Isovalues []float64
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Tau <= 0 {
		return errors.New("isosurface: Tau must be positive")
	}
	if len(o.Isovalues) == 0 {
		return errors.New("isosurface: at least one isovalue required")
	}
	return nil
}

const isoMagic = 0x4F53 // "SO"

// Field is a scalar field on a structured grid; NZ == 1 means 2D.
type Field struct {
	NX, NY, NZ int
	Data       []float32
}

// NewField allocates a zero scalar field.
func NewField(nx, ny, nz int) *Field {
	if nz < 1 {
		nz = 1
	}
	return &Field{NX: nx, NY: ny, NZ: nz, Data: make([]float32, safedim.MustProduct(nx, ny, nz))}
}

// SideOf returns -1/0/+1 for a sample relative to an isovalue in the
// fixed-point domain (the preserved predicate).
func SideOf(v, iso int64) int {
	switch {
	case v < iso:
		return -1
	case v > iso:
		return 1
	default:
		return 0
	}
}

// Compress compresses the scalar field preserving the side of every
// sample with respect to every isovalue.
func Compress(f *Field, opts Options) ([]byte, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := safedim.MustProduct(f.NX, f.NY, f.NZ)
	if len(f.Data) != n {
		return nil, errors.New("isosurface: data length mismatch")
	}
	tr, err := fixed.Fit(f.Data)
	if err != nil {
		return nil, err
	}
	tau := tr.Bound(opts.Tau)
	// Fixed-point isovalues (rounded to nearest), sorted for the
	// nearest-level search. With round-to-nearest, preserving the strict
	// side of the fixed-point level also preserves the strict side of
	// the float-valued level: any sample whose fixed distance is ≥ 1 has
	// float distance ≥ 0.5 units, and ties are stored losslessly.
	isos := make([]int64, len(opts.Isovalues))
	for i, iso := range opts.Isovalues {
		isos[i] = int64(math.RoundToEven(iso * tr.Scale))
	}
	sort.Slice(isos, func(i, j int) bool { return isos[i] < isos[j] })

	data := make([]int64, n)
	tr.ToFixed(f.Data, data)

	var expSyms, codeSyms []uint32
	var literals []byte
	for k := 0; k < f.NZ; k++ {
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				idx := (k*f.NY+j)*f.NX + i
				v := data[idx]
				xi := tau
				if d := nearestDistance(v, isos) - 1; d < xi {
					xi = d
				}
				if xi < 0 {
					xi = 0
				}
				sym, snapped := quantizer.BoundSym(xi, tau)
				pred := predictor.Lorenzo3D(data, f.NX, f.NY, i, j, k)
				code, recon, ok := quantizer.Quantize(v, pred, snapped)
				expSyms = append(expSyms, uint32(sym))
				if !ok {
					codeSyms = append(codeSyms, uint32(2*quantizer.Radius))
					var b [4]byte
					binary.LittleEndian.PutUint32(b[:], uint32(int32(v)))
					literals = append(literals, b[:]...)
					recon = v
				} else {
					codeSyms = append(codeSyms, huffman.Zigzag(code))
				}
				data[idx] = recon
			}
		}
	}

	var head []byte
	head = binary.LittleEndian.AppendUint16(head, isoMagic)
	head = binary.AppendUvarint(head, uint64(f.NX))
	head = binary.AppendUvarint(head, uint64(f.NY))
	head = binary.AppendUvarint(head, uint64(f.NZ))
	head = binary.AppendVarint(head, int64(tr.Shift))
	head = binary.AppendVarint(head, tau)
	return encoder.Pack(head, huffman.Compress(expSyms), huffman.Compress(codeSyms), literals)
}

// nearestDistance returns the distance from v to the closest isovalue
// (isos sorted ascending).
func nearestDistance(v int64, isos []int64) int64 {
	i := sort.Search(len(isos), func(i int) bool { return isos[i] >= v })
	best := int64(1) << 62
	if i < len(isos) {
		if d := isos[i] - v; d < best {
			best = d
		}
	}
	if i > 0 {
		if d := v - isos[i-1]; d < best {
			best = d
		}
	}
	return best
}

// Decompress reconstructs a field compressed by Compress.
func Decompress(blob []byte) (*Field, error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return nil, err
	}
	if len(sections) != 4 {
		return nil, errors.New("isosurface: wrong section count")
	}
	head := sections[0]
	if len(head) < 2 || binary.LittleEndian.Uint16(head) != isoMagic {
		return nil, errors.New("isosurface: bad magic")
	}
	head = head[2:]
	// Bounds-checked varint reads: truncated buffers (k <= 0) and
	// oversized dimensions must error out before slicing or before the
	// vertex-count product can overflow.
	errHead := errors.New("isosurface: truncated or oversized header")
	var perr error
	readU := func() int {
		v, k := binary.Uvarint(head)
		if k <= 0 || v < 1 || v > 1<<28 {
			perr = errHead
			return 1
		}
		head = head[k:]
		return int(v)
	}
	nx, ny, nz := readU(), readU(), readU()
	if perr != nil {
		return nil, perr
	}
	sv, k := binary.Varint(head)
	if k <= 0 {
		return nil, errHead
	}
	head = head[k:]
	shift := int(sv)
	tau, k := binary.Varint(head)
	if k <= 0 {
		return nil, errHead
	}
	if p := uint64(nx) * uint64(ny); p > 1<<40 || p > (1<<40)/uint64(nz) {
		return nil, errors.New("isosurface: field too large")
	}
	expSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return nil, err
	}
	codeSyms, err := huffman.Decompress(sections[2])
	if err != nil {
		return nil, err
	}
	literals := sections[3]
	// Cannot overflow: the header check above bounds nx*ny*nz by 2^40.
	n := safedim.MustProduct(nx, ny, nz)
	if len(expSyms) != n || len(codeSyms) != n {
		return nil, errors.New("isosurface: stream length mismatch")
	}
	data := make([]int64, n)
	p := 0
	for kz := 0; kz < nz; kz++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := (kz*ny+j)*nx + i
				sym := codeSyms[p]
				if sym == uint32(2*quantizer.Radius) {
					if len(literals) < 4 {
						return nil, errors.New("isosurface: literal underrun")
					}
					data[idx] = int64(int32(binary.LittleEndian.Uint32(literals)))
					literals = literals[4:]
				} else {
					bound := quantizer.BoundFromSym(uint8(expSyms[p]), tau)
					pred := predictor.Lorenzo3D(data, nx, ny, i, j, kz)
					data[idx] = quantizer.Reconstruct(huffman.Unzigzag(sym), pred, bound)
				}
				p++
			}
		}
	}
	out := NewField(nx, ny, nz)
	tr := fixed.FromShift(shift)
	tr.ToFloat(data, out.Data)
	return out, nil
}

// CellCases returns the marching-squares/cubes sign pattern of every cell
// for an isovalue: a bitmask over cell corners (1 = corner strictly above
// the level). Comparing patterns between original and decompressed data
// verifies isosurface topology preservation cell by cell.
func CellCases(f *Field, iso float64) []uint8 {
	above := func(v float32) bool { return float64(v) > iso }
	if f.NZ == 1 {
		out := make([]uint8, safedim.MustProduct(f.NX-1, f.NY-1))
		for j := 0; j < f.NY-1; j++ {
			for i := 0; i < f.NX-1; i++ {
				var m uint8
				for b, off := range [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
					if above(f.Data[(j+off[1])*f.NX+i+off[0]]) {
						m |= 1 << b
					}
				}
				out[j*(f.NX-1)+i] = m
			}
		}
		return out
	}
	out := make([]uint8, safedim.MustProduct(f.NX-1, f.NY-1, f.NZ-1))
	c := 0
	for k := 0; k < f.NZ-1; k++ {
		for j := 0; j < f.NY-1; j++ {
			for i := 0; i < f.NX-1; i++ {
				var m uint8
				b := 0
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							if above(f.Data[((k+dz)*f.NY+j+dy)*f.NX+i+dx]) {
								m |= 1 << b
							}
							b++
						}
					}
				}
				out[c] = m
				c++
			}
		}
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (f *Field) String() string {
	return fmt.Sprintf("scalar field %dx%dx%d", f.NX, f.NY, f.NZ)
}
