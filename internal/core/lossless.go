package core

import (
	"errors"

	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/quantizer"
	"repro/internal/safedim"
)

// The lossless escape encoding: a degenerate but fully format-compatible
// block in which every vertex is stored as a literal escape of its exact
// fixed-point value. It involves no prediction, no bound derivation, no
// speculation, and no topology code — only the fixed-point transform and
// the container framing — which makes it the graceful-degradation target
// of the fault-tolerant shm pipeline: if a slab's real encoder keeps
// failing, the slab falls back to this encoding, which trivially
// preserves every critical point (the decoder reproduces the exact
// fixed-point values the detector runs on) at the cost of compression
// ratio. Decompress2D/3D read the result like any other block.

// losslessBlob builds the escape-only block for nc components of n
// vertices each (raster order).
func losslessBlob(h header, tr fixed.Transform, comps [][]float32) ([]byte, error) {
	n := len(comps[0])
	nc := len(comps)
	expSyms := make([]uint32, n)
	for i := range expSyms {
		expSyms[i] = uint32(quantizer.LosslessSym)
	}
	codeSyms := make([]uint32, safedim.MustProduct(nc, n))
	for i := range codeSyms {
		codeSyms[i] = escapeSym
	}
	// The literal stream interleaves components per vertex, matching the
	// decoder's raster replay.
	literals := make([]byte, 0, safedim.MustProduct(4, nc, n))
	row := make([]int64, 1)
	for v := 0; v < n; v++ {
		for c := 0; c < nc; c++ {
			tr.ToFixed(comps[c][v:v+1], row)
			literals = appendLiteral(literals, row[0])
		}
	}
	expStream := huffman.Compress(expSyms)
	codeStream := huffman.Compress(codeSyms)
	h.HasCRC = true
	h.PayloadCRC = h.payloadChecksum(expStream, codeStream, literals)
	return encoder.Pack(h.marshal(), expStream, codeStream, literals)
}

// CompressLossless2D stores f exactly (up to the fixed-point rounding all
// paths share) as an escape-only block decodable with Decompress2D.
func CompressLossless2D(f *field.Field2D, tr fixed.Transform) ([]byte, error) {
	if f.NX < 2 || f.NY < 2 {
		return nil, errors.New("core: block must be at least 2x2")
	}
	n := f.NX * f.NY
	if len(f.U) != n || len(f.V) != n {
		return nil, errors.New("core: component length mismatch")
	}
	h := header{NDim: 2, NX: f.NX, NY: f.NY, Shift: tr.Shift}
	return losslessBlob(h, tr, [][]float32{f.U, f.V})
}

// CompressLossless3D is the 3D variant of CompressLossless2D.
func CompressLossless3D(f *field.Field3D, tr fixed.Transform) ([]byte, error) {
	if f.NX < 2 || f.NY < 2 || f.NZ < 2 {
		return nil, errors.New("core: block must be at least 2x2x2")
	}
	n := f.NX * f.NY * f.NZ
	if len(f.U) != n || len(f.V) != n || len(f.W) != n {
		return nil, errors.New("core: component length mismatch")
	}
	h := header{NDim: 3, NX: f.NX, NY: f.NY, NZ: f.NZ, Shift: tr.Shift}
	return losslessBlob(h, tr, [][]float32{f.U, f.V, f.W})
}
