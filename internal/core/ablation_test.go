package core

import (
	"testing"

	"repro/internal/cp"
	"repro/internal/datagen"
	"repro/internal/fixed"
)

func TestDisableRelaxationSoundButSmallerRatio(t *testing.T) {
	// The ocean field has large sign-uniform (and fully masked) regions
	// where the relaxation pays off; without it compression must still
	// preserve everything.
	f := datagen.Ocean(96, 72)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField2D(f, tr)
	full, err := CompressField2D(f, tr, Options{Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	norelax, err := CompressField2D(f, tr, Options{Tau: 0.05, DisableRelaxation: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress2D(norelax)
	if err != nil {
		t.Fatal(err)
	}
	rep := cp.Compare(orig, cp.DetectField2D(g, tr))
	if !rep.Preserved() {
		t.Errorf("relaxation-free compression must stay sound: %v", rep)
	}
	if len(norelax) < len(full) {
		t.Errorf("relaxation should not hurt the ratio: %d vs %d bytes", len(full), len(norelax))
	}
}

func TestOrientationOnlyAblationCanBreakDetection(t *testing.T) {
	// Dropping the origin-substituted predicates of Theorem 2 preserves
	// sign(s) but not sign(s_i): over an ensemble of fields some
	// detection outcome flips, demonstrating the predicates are
	// necessary. (Each individual field may or may not expose it.)
	broke := false
	for seed := int64(0); seed < 8 && !broke; seed++ {
		f := smooth2D(100+seed, 48, 40)
		tr, err := fixed.Fit(f.U, f.V)
		if err != nil {
			t.Fatal(err)
		}
		orig := cp.DetectField2D(f, tr)
		blob, err := CompressField2D(f, tr, Options{Tau: 0.2, OrientationOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decompress2D(blob)
		if err != nil {
			t.Fatal(err)
		}
		rep := cp.Compare(orig, cp.DetectField2D(g, tr))
		if !rep.Preserved() {
			broke = true
		}
	}
	if !broke {
		t.Log("orientation-only derivation survived the ensemble; the ablation is probabilistic")
	}
	// Sanity: the full derivation never breaks on the same ensemble.
	for seed := int64(0); seed < 8; seed++ {
		f := smooth2D(100+seed, 48, 40)
		tr, _ := fixed.Fit(f.U, f.V)
		orig := cp.DetectField2D(f, tr)
		blob, err := CompressField2D(f, tr, Options{Tau: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		g, _ := Decompress2D(blob)
		if rep := cp.Compare(orig, cp.DetectField2D(g, tr)); !rep.Preserved() {
			t.Fatalf("full derivation broke on seed %d: %v", seed, rep)
		}
	}
}

func TestEncoderStats(t *testing.T) {
	f := datagen.Ocean(96, 72)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder2D(Block2D{NX: f.NX, NY: f.NY, U: f.U, V: f.V, Transform: tr,
		Opts: Options{Tau: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	enc.Run()
	st := enc.Stats()
	if st.Vertices != f.NX*f.NY {
		t.Errorf("Vertices = %d, want %d", st.Vertices, f.NX*f.NY)
	}
	if st.Lossless == 0 {
		t.Error("a field with critical points must have lossless vertices")
	}
	if st.Lossless > st.Vertices {
		t.Error("lossless count exceeds vertices")
	}
	if st.SpecTrials != 0 {
		t.Error("NoSpec must not speculate")
	}

	enc4, _ := NewEncoder2D(Block2D{NX: f.NX, NY: f.NY, U: f.U, V: f.V, Transform: tr,
		Opts: Options{Tau: 0.05, Spec: ST4}})
	enc4.Run()
	st4 := enc4.Stats()
	if st4.SpecTrials == 0 {
		t.Error("ST4 must speculate")
	}
	if st4.SpecFails > st4.SpecTrials {
		t.Error("more failures than trials")
	}
}

func TestStats3D(t *testing.T) {
	f := smooth3D(200, 12, 12, 10)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder3D(Block3D{NX: f.NX, NY: f.NY, NZ: f.NZ, U: f.U, V: f.V, W: f.W,
		Transform: tr, Opts: Options{Tau: 0.05, Spec: ST2}})
	if err != nil {
		t.Fatal(err)
	}
	enc.Run()
	st := enc.Stats()
	if st.Vertices != len(f.U) {
		t.Errorf("Vertices = %d", st.Vertices)
	}
	if st.SpecTrials == 0 {
		t.Error("ST2 must speculate")
	}
}
