// Package core implements the paper's critical-point-preserving lossy
// compressor (Algorithm 2): a coupled prediction-based pipeline whose
// per-vertex error bounds come from the sign-of-determinant derivation
// theory (package derive), with the sign-uniformity relaxation, the
// speculative compression scheme of Section V-B, and block-level entry
// points used by the distributed strategies of Section VI.
//
// The compressor converts the float32 field to fixed point (package
// fixed), precomputes which cells contain critical points under the robust
// point-in-simplex test (package cp), and then visits vertices in a
// deterministic order. For each vertex it derives a sufficient bound,
// optionally speculates a larger one, quantizes all vector components
// against a Lorenzo prediction, and immediately replaces the input with
// the decompressed value so that later derivations and predictions see
// exactly what the decompressor will see.
//
// The decompressor never re-derives bounds or runs any topology code: it
// replays the visit order and reconstructs from the stored bound exponents
// and quantization codes. That asymmetry is why decompression is several
// times faster than compression, matching the paper's measurements.
package core

import (
	"errors"
	"fmt"

	"repro/internal/flightrec"
	"repro/internal/telemetry"
)

// Speculation selects the speculative compression target (Table I).
type Speculation uint8

const (
	// NoSpec compresses with the derived bounds only.
	NoSpec Speculation = iota
	// ST1 speculates on the derived error bound: it compresses with a
	// relaxed bound and accepts when the realized error still meets the
	// derived bound. Cheapest target; n_l = 1.
	ST1
	// ST2 speculates on FN preservation (n_l = 1): it skips derivation,
	// compresses with a relaxed bound, and verifies that no adjacent cell
	// gains a critical point.
	ST2
	// ST3 is ST2 with n_l = 3 (more retries, larger initial relaxation).
	ST3
	// ST4 speculates on the entire preservation procedure (n_l = 3):
	// detection result and critical point type are verified on every
	// adjacent cell, so even vertices of cells containing critical points
	// may be compressed lossily.
	ST4
)

// String returns the abbreviation used in the paper's tables.
func (s Speculation) String() string {
	switch s {
	case NoSpec:
		return "NoSpec"
	case ST1:
		return "ST1"
	case ST2:
		return "ST2"
	case ST3:
		return "ST3"
	case ST4:
		return "ST4"
	default:
		return fmt.Sprintf("Speculation(%d)", uint8(s))
	}
}

// retries returns n_l, the speculation failure limit.
func (s Speculation) retries() int {
	switch s {
	case ST1, ST2:
		return 1
	case ST3, ST4:
		return 3
	default:
		return 0
	}
}

// Options configures compression.
type Options struct {
	// Tau is the user-specified absolute error bound τ (in the units of
	// the input field). Errors stay within τ except where the
	// sign-uniformity relaxation or speculation proves the data carries
	// no critical point topology.
	Tau float64
	// Spec selects the speculation target; the zero value is NoSpec.
	Spec Speculation

	// Ablation knobs (default false = the paper's Algorithm 2). They
	// exist for the ablation study in DESIGN.md.

	// DisableRelaxation skips the sign-uniformity relaxation (Algorithm 2
	// lines 11–15). Still sound; typically lowers the ratio on data with
	// sign-uniform regions.
	DisableRelaxation bool
	// OrientationOnly derives bounds from the simplex orientation
	// determinant alone, dropping the origin-substituted submatrix
	// predicates of Theorem 2. UNSOUND — preservation can fail; the
	// ablation demonstrates why the extra predicates are necessary.
	OrientationOnly bool

	// Tel, when non-nil, receives per-stage spans, speculation and
	// relaxation counters, and the bound-exponent histogram of the run.
	// nil (the default) disables telemetry; instrumented paths then cost
	// one nil check per event.
	Tel *telemetry.Collector
	// TelSpan optionally parents the encoder's stage spans (the
	// distributed strategies pass a per-rank span here). When nil and Tel
	// is set, the encoder opens its own root span.
	TelSpan *telemetry.Span
	// Rec, when non-nil, records the first speculation rollback of each
	// vertex and every hard cut-off to lossless into the flight recorder.
	// Only the first rejected trial per vertex is recorded — speculation
	// retries by design, and recording each of n_l restrictions would
	// flood the ring without adding diagnosis value.
	Rec *flightrec.Recorder
	// RecSlab attributes the kernel's flight-recorder events to a slab
	// (-1 when the encoder is not slab-scoped).
	RecSlab int
}

// Stats reports what the encoder did; useful for tuning and for the
// ablation study.
type Stats struct {
	// Vertices is the number of own vertices compressed.
	Vertices int
	// Lossless counts vertices stored with bound 0.
	Lossless int
	// Relaxed counts vertices where the sign-uniformity relaxation
	// raised at least one adjacent cell's bound beyond min(Ψ, τ′).
	Relaxed int
	// SpecTrials and SpecFails count speculation attempts and rejected
	// attempts.
	SpecTrials, SpecFails int
	// SpecCutoffs counts vertices where speculation hit the hard cut-off
	// (n_l failures, or the trial bound shrank to zero) and fell back to
	// lossless storage.
	SpecCutoffs int
	// Literals counts component values escaped to the literal stream.
	Literals int
}

// Add accumulates o into s, for aggregating per-block stats of a
// distributed run.
func (s *Stats) Add(o Stats) {
	s.Vertices += o.Vertices
	s.Lossless += o.Lossless
	s.Relaxed += o.Relaxed
	s.SpecTrials += o.SpecTrials
	s.SpecFails += o.SpecFails
	s.SpecCutoffs += o.SpecCutoffs
	s.Literals += o.Literals
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Tau <= 0 {
		return errors.New("core: Tau must be positive")
	}
	if o.Spec > ST4 {
		return fmt.Errorf("core: unknown speculation target %d", o.Spec)
	}
	return nil
}
