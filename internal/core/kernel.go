package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cp"
	"repro/internal/encoder"
	"repro/internal/exact/filter"
	"repro/internal/fixed"
	"repro/internal/flightrec"
	"repro/internal/huffman"
	"repro/internal/quantizer"
	"repro/internal/safedim"
)

// The dimension-generic compression kernel. Algorithm 2 and the ST1–ST4
// speculation ladder are dimension-independent: only the stencil, the
// adjacent-cell determinant predicates, and the component count differ
// between 2D and 3D. The kernel owns the shared machinery — the vertex
// sweep, Lorenzo/temporal prediction, bound derivation with the
// sign-uniformity relaxation, the speculation state machine with
// rollback, quantize/escape/commit, ghost/border handling, and the
// two-phase protocol — and delegates the per-dimension parts to a small
// dimOps plug (see dims.go). Encoder2D/Encoder3D are thin adapters.
//
// All index arithmetic is shared by treating a 2D block as nz == 1 with
// no Z neighbors: every extended/own index formula, the face/ghost
// indexing, the visit orders, and the masked Lorenzo predictor then
// reduce bit-exactly to their 2D forms.

// Ghost side indices for the Neighbor arrays and the ghost setters.
const (
	SideMinX = 0
	SideMaxX = 1
	SideMinY = 2
	SideMaxY = 3
	SideMinZ = 4
	SideMaxZ = 5
)

// maxComps is the largest component count (3D fields have u, v, w).
const maxComps = 3

// blockSpec is the dimension-erased description of one block to
// compress. The Block2D/Block3D adapters flatten into it; a 2D block has
// nz = 1, nc = 2, and no Z neighbors.
type blockSpec struct {
	ndim, nc      int
	nx, ny, nz    int
	comps         [maxComps][]float32
	prev          [maxComps][]float32
	transform     fixed.Transform
	opts          Options
	gx0, gy0, gz0 int
	gnx, gny, gnz int
	neighbor      [6]bool
	losslessBord  bool
	twoPhase      bool
}

// kernel is one in-flight block compression. It mirrors the lifecycle of
// the public encoders: construct, optionally set ghosts, prepare, run
// (or run phase by phase), finish.
type kernel struct {
	blk       blockSpec
	tau       int64
	ext       [3]int // extended dims (ghost layers included)
	off       [3]int // own-region offset inside the extended arrays
	comps     [maxComps][]int64
	own       [maxComps][]int64
	prev      [maxComps][]int64
	temporal  bool
	valid     []bool
	ownDone   []bool
	dim       dimOps
	det       cellChecker
	cellValid []bool
	cpCell    []bool
	origType  map[int]cp.Type
	cpAdj     []bool
	expSyms   []uint32
	codeSyms  []uint32
	literals  []byte
	cellBuf   []int
	scr       *kernelScratch
	stats     Stats
	tel       engineTel
	prepared  bool
	finished  bool
	// pred batches the filter-efficacy counters of this kernel's
	// derivation and speculation predicates (one goroutine per kernel),
	// flushed to the process-wide totals in finish/close.
	pred filter.Local
}

// newKernel validates the block, allocates the extended arrays, converts
// the own region to fixed point, and binds the per-dimension plug.
func newKernel(blk blockSpec) (*kernel, error) {
	if err := blk.opts.Validate(); err != nil {
		return nil, err
	}
	if blk.nx < 2 || blk.ny < 2 || (blk.ndim == 3 && blk.nz < 2) {
		if blk.ndim == 2 {
			return nil, errors.New("core: block must be at least 2x2")
		}
		return nil, errors.New("core: block must be at least 2x2x2")
	}
	n := blk.nx * blk.ny * blk.nz
	for c := 0; c < blk.nc; c++ {
		if len(blk.comps[c]) != n {
			return nil, errors.New("core: component length mismatch")
		}
	}
	if blk.gnx == 0 {
		blk.gnx, blk.gny, blk.gnz = blk.nx, blk.ny, blk.nz
	}
	if blk.opts.Tau < blk.transform.Resolution() {
		return nil, fmt.Errorf("core: Tau %g is below the fixed-point resolution %g of this field; use lossless storage instead",
			blk.opts.Tau, blk.transform.Resolution())
	}
	k := &kernel{blk: blk, tau: blk.transform.Bound(blk.opts.Tau)}
	k.ext = [3]int{blk.nx, blk.ny, blk.nz}
	if blk.twoPhase {
		for a := 0; a < 3; a++ {
			if blk.neighbor[2*a] {
				k.off[a] = 1
				k.ext[a]++
			}
			if blk.neighbor[2*a+1] {
				k.ext[a]++
			}
		}
	}
	temporal := false
	for c := 0; c < blk.nc; c++ {
		if blk.prev[c] != nil {
			temporal = true
		}
	}
	if temporal {
		for c := 0; c < blk.nc; c++ {
			if len(blk.prev[c]) != n {
				return nil, errors.New("core: previous-frame length mismatch")
			}
		}
	}
	// All validation is done: acquire the pooled scratch. From here the
	// kernel owns it until close().
	en := k.ext[0] * k.ext[1] * k.ext[2]
	scr := scratchPool.Get().(*kernelScratch)
	k.scr = scr
	for c := 0; c < blk.nc; c++ {
		scr.comps[c] = growI64(scr.comps[c], en)
		scr.own[c] = growI64(scr.own[c], n)
		k.comps[c] = scr.comps[c]
		k.own[c] = scr.own[c]
	}
	scr.valid = growBool(scr.valid, en)
	scr.ownDone = growBool(scr.ownDone, n)
	k.valid = scr.valid
	k.ownDone = scr.ownDone
	k.expSyms = scr.expSyms[:0]
	k.codeSyms = scr.codeSyms[:0]
	k.literals = scr.literals[:0]
	k.cellBuf = scr.cellBuf[:0]
	if temporal {
		for c := 0; c < blk.nc; c++ {
			scr.prev[c] = growI64(scr.prev[c], n)
			k.prev[c] = scr.prev[c]
			blk.transform.ToFixed(blk.prev[c], k.prev[c])
		}
		k.temporal = true
	}
	k.dim = newDimOps(blk.ndim, k.ext, k.comps, &k.pred)
	k.tel = newEngineTel(blk.opts, k.dim.name())
	// Fill the own region.
	convert := k.tel.stage("fixed-convert")
	scr.row = growI64(scr.row, blk.nx)
	row := scr.row
	for kk := 0; kk < blk.nz; kk++ {
		for j := 0; j < blk.ny; j++ {
			src := (kk*blk.ny + j) * blk.nx
			dst := ((kk+k.off[2])*k.ext[1]+(j+k.off[1]))*k.ext[0] + k.off[0]
			for c := 0; c < blk.nc; c++ {
				blk.transform.ToFixed(blk.comps[c][src:src+blk.nx], row)
				copy(k.comps[c][dst:], row)
			}
			for i := 0; i < blk.nx; i++ {
				k.valid[dst+i] = true
			}
		}
	}
	convert.End()
	return k, nil
}

// extIdx maps own coordinates to the extended-array vertex index.
func (k *kernel) extIdx(oi, oj, ok int) int {
	return ((ok+k.off[2])*k.ext[1]+(oj+k.off[1]))*k.ext[0] + (oi + k.off[0])
}

// ownIdx maps own coordinates to the own-layout index.
func (k *kernel) ownIdx(oi, oj, ok int) int {
	return (ok*k.blk.ny+oj)*k.blk.nx + oi
}

// faceDims returns the in-face dimensions (d0 fast axis, d1 slow axis) of
// a ghost plane. In 2D the slow axis is degenerate (d1 == 1), so a plane
// is a line.
func (k *kernel) faceDims(side int) (d0, d1 int) {
	switch side {
	case SideMinX, SideMaxX:
		return k.blk.ny, k.blk.nz
	case SideMinY, SideMaxY:
		return k.blk.nx, k.blk.nz
	default:
		return k.blk.nx, k.blk.ny
	}
}

// faceIndex maps in-face coordinates (a fast, b slow) to the extended
// array index of the ghost vertex on the given side.
func (k *kernel) faceIndex(side, a, b int) int {
	var i, j, kk int
	switch side {
	case SideMinX:
		i, j, kk = 0, a+k.off[1], b+k.off[2]
	case SideMaxX:
		i, j, kk = k.ext[0]-1, a+k.off[1], b+k.off[2]
	case SideMinY:
		i, j, kk = a+k.off[0], 0, b+k.off[2]
	case SideMaxY:
		i, j, kk = a+k.off[0], k.ext[1]-1, b+k.off[2]
	case SideMinZ:
		i, j, kk = a+k.off[0], b+k.off[1], 0
	default:
		i, j, kk = a+k.off[0], b+k.off[1], k.ext[2]-1
	}
	return (kk*k.ext[1]+j)*k.ext[0] + i
}

// setGhostPlane supplies the fixed-point ghost values for one side, one
// slice per component, laid out fast-axis first (per faceDims). For
// two-phase blocks the min/max sides carry the neighbors' border values:
// originals before phase 1, decompressed values before phase 2.
func (k *kernel) setGhostPlane(side int, vals [][]int64) error {
	if side < 0 || side >= 2*k.blk.ndim || !k.blk.twoPhase || !k.blk.neighbor[side] {
		return fmt.Errorf("core: no ghost layer on side %d", side)
	}
	d0, d1 := k.faceDims(side)
	if len(vals) != k.blk.nc {
		return errors.New("core: ghost component count mismatch")
	}
	for _, z := range vals {
		if len(z) != d0*d1 {
			return errors.New("core: ghost face length mismatch")
		}
	}
	for b := 0; b < d1; b++ {
		for a := 0; a < d0; a++ {
			idx := k.faceIndex(side, a, b)
			f := b*d0 + a
			for c := 0; c < k.blk.nc; c++ {
				k.comps[c][idx] = vals[c][f]
			}
			k.valid[idx] = true
		}
	}
	return nil
}

// borderPlane returns the current (decompressed once processed)
// fixed-point values of one own border plane, one freshly allocated slice
// per component, for the phase exchanges. Unknown sides return nil.
func (k *kernel) borderPlane(side int) [][]int64 {
	if side < 0 || side >= 2*k.blk.ndim {
		return nil
	}
	d0, d1 := k.faceDims(side)
	plane := safedim.MustProduct(d0, d1)
	out := make([][]int64, k.blk.nc)
	for c := range out[:k.blk.nc] {
		out[c] = make([]int64, plane)
	}
	for b := 0; b < d1; b++ {
		for a := 0; a < d0; a++ {
			var i, j, kk int
			switch side {
			case SideMinX:
				i, j, kk = k.off[0], a+k.off[1], b+k.off[2]
			case SideMaxX:
				i, j, kk = k.off[0]+k.blk.nx-1, a+k.off[1], b+k.off[2]
			case SideMinY:
				i, j, kk = a+k.off[0], k.off[1], b+k.off[2]
			case SideMaxY:
				i, j, kk = a+k.off[0], k.off[1]+k.blk.ny-1, b+k.off[2]
			case SideMinZ:
				i, j, kk = a+k.off[0], b+k.off[1], k.off[2]
			default:
				i, j, kk = a+k.off[0], b+k.off[1], k.off[2]+k.blk.nz-1
			}
			idx := (kk*k.ext[1]+j)*k.ext[0] + i
			f := b*d0 + a
			for c := 0; c < k.blk.nc; c++ {
				out[c][f] = k.comps[c][idx]
			}
		}
	}
	return out
}

// prepare precomputes the critical point map (Algorithm 2 lines 1–3).
// For two-phase blocks all ghost planes must have been set (with the
// neighbors' original values).
func (k *kernel) prepare() {
	precompute := k.tel.stage("cp-precompute")
	defer precompute.End()
	gx0 := k.blk.gx0 - k.off[0]
	gy0 := k.blk.gy0 - k.off[1]
	gz0 := k.blk.gz0 - k.off[2]
	gnx, gny := k.blk.gnx, k.blk.gny
	extNX, extNY := k.ext[0], k.ext[1]
	// The SoS identity runs on every exact-predicate tie, so the 2D form
	// skips the plane division (gz0 == 0 there makes the 3D form reduce to
	// it exactly).
	gid := func(v int) int {
		i := v % extNX
		j := (v / extNX) % extNY
		kk := v / (extNX * extNY)
		return ((gz0+kk)*gny+(gy0+j))*gnx + (gx0 + i)
	}
	if k.blk.ndim == 2 {
		gid = func(v int) int {
			i, j := v%extNX, v/extNX
			return (gy0+j)*gnx + (gx0 + i)
		}
	}
	k.det = k.dim.makeDetector(gid)
	nc := k.dim.numCells()
	k.scr.cellValid = growBool(k.scr.cellValid, nc)
	k.scr.cpCell = growBool(k.scr.cpCell, nc)
	k.cellValid = k.scr.cellValid
	k.cpCell = k.scr.cpCell
	k.scr.cellEval = growBool(k.scr.cellEval, nc)
	evalMask := k.scr.cellEval
	var vsbuf [4]int
	nv := k.blk.ndim + 1
	for c := 0; c < nc; c++ {
		k.dim.cellVertices(c, &vsbuf)
		vs := vsbuf[:nv]
		ok := true
		zero := true
		for _, vi := range vs {
			if !k.valid[vi] {
				ok = false
				break
			}
			for comp := 0; comp < k.blk.nc; comp++ {
				if k.comps[comp][vi] != 0 {
					zero = false
					break
				}
			}
		}
		if ok {
			k.cellValid[c] = true
			evalMask[c] = !zero
		}
	}
	// Batched containment sweep over the valid non-degenerate cells:
	// the detector loads each vertex row once instead of per cell.
	k.det.ContainsBatch(evalMask, k.cpCell)
	if k.blk.opts.Spec == ST4 {
		k.origType = make(map[int]cp.Type)
		for c := 0; c < nc; c++ {
			if k.cpCell[c] {
				k.origType[c] = k.det.CellType(c)
			}
		}
	}
	k.scr.cpAdj = growBool(k.scr.cpAdj, k.blk.nx*k.blk.ny*k.blk.nz)
	k.cpAdj = k.scr.cpAdj
	for ok2 := 0; ok2 < k.blk.nz; ok2++ {
		for oj := 0; oj < k.blk.ny; oj++ {
			for oi := 0; oi < k.blk.nx; oi++ {
				vid := k.extIdx(oi, oj, ok2)
				k.cellBuf = k.dim.vertexCells(vid, k.cellBuf[:0])
				for _, c := range k.cellBuf {
					if k.cellValid[c] && k.cpCell[c] {
						k.cpAdj[k.ownIdx(oi, oj, ok2)] = true
						break
					}
				}
			}
		}
	}
	k.prepared = true
}

// run compresses every vertex in raster order (single-node and
// lossless-border blocks). On a two-phase block it runs both phases
// back-to-back — callers that exchange ghosts between the phases must
// drive runPhase1/runPhase2 themselves, but the visit order stays
// consistent with the decoder either way.
func (k *kernel) run() {
	if !k.prepared {
		k.prepare()
	}
	if k.blk.twoPhase {
		k.runPhase1()
		k.runPhase2()
		return
	}
	process := k.tel.stage("process")
	for ok := 0; ok < k.blk.nz; ok++ {
		for oj := 0; oj < k.blk.ny; oj++ {
			for oi := 0; oi < k.blk.nx; oi++ {
				k.processVertex(oi, oj, ok)
			}
		}
	}
	process.End()
}

// runPhase1 compresses every vertex except those on neighbor-facing max
// planes (ratio-oriented strategy, first phase).
func (k *kernel) runPhase1() {
	if !k.prepared {
		k.prepare()
	}
	process := k.tel.stage("process-phase1")
	defer process.End()
	for ok := 0; ok < k.blk.nz; ok++ {
		for oj := 0; oj < k.blk.ny; oj++ {
			for oi := 0; oi < k.blk.nx; oi++ {
				if !k.phase2Vertex(oi, oj, ok) {
					k.processVertex(oi, oj, ok)
				}
			}
		}
	}
}

// runPhase2 compresses the remaining max-plane vertices. Ghost planes on
// the max sides should have been refreshed with the neighbors'
// decompressed borders.
func (k *kernel) runPhase2() {
	process := k.tel.stage("process-phase2")
	defer process.End()
	for ok := 0; ok < k.blk.nz; ok++ {
		for oj := 0; oj < k.blk.ny; oj++ {
			for oi := 0; oi < k.blk.nx; oi++ {
				if k.phase2Vertex(oi, oj, ok) {
					k.processVertex(oi, oj, ok)
				}
			}
		}
	}
}

func (k *kernel) phase2Vertex(oi, oj, ok int) bool {
	return (k.blk.neighbor[SideMaxX] && oi == k.blk.nx-1) ||
		(k.blk.neighbor[SideMaxY] && oj == k.blk.ny-1) ||
		(k.blk.neighbor[SideMaxZ] && ok == k.blk.nz-1)
}

// forcedLossless reports whether the strategy pins this vertex to zero
// error: neighbor-facing borders in LosslessBorder mode, and vertices on
// two or more neighbor-facing planes (block corners/edges, whose
// derivation would need diagonal ghosts) in two-phase mode.
func (k *kernel) forcedLossless(oi, oj, ok int) bool {
	planes := 0
	o := [3]int{oi, oj, ok}
	lim := [3]int{k.blk.nx - 1, k.blk.ny - 1, k.blk.nz - 1}
	for a := 0; a < 3; a++ {
		if k.blk.neighbor[2*a] && o[a] == 0 {
			planes++
		}
		if k.blk.neighbor[2*a+1] && o[a] == lim[a] {
			planes++
		}
	}
	if k.blk.losslessBord {
		return planes >= 1
	}
	if k.blk.twoPhase {
		return planes >= 2
	}
	return false
}

func (k *kernel) processVertex(oi, oj, ok int) {
	vid := k.extIdx(oi, oj, ok)
	own := k.ownIdx(oi, oj, ok)
	spec := k.blk.opts.Spec
	cpA := k.cpAdj[own]

	var sym uint8
	var snapped int64
	switch {
	case k.forcedLossless(oi, oj, ok):
		sym, snapped = quantizer.LosslessSym, 0
	case spec == NoSpec:
		xi := int64(0)
		if !cpA {
			var relaxed bool
			xi, relaxed = k.deriveBound(vid)
			if relaxed {
				k.stats.Relaxed++
				k.tel.relaxed.Inc()
			}
		}
		sym, snapped = quantizer.BoundSym(xi, k.tau)
	case spec == ST1:
		sym, snapped = k.speculateST1(oi, oj, ok, vid, cpA)
	case spec == ST2 || spec == ST3:
		sym, snapped = k.speculateFN(oi, oj, ok, vid, cpA)
	default: // ST4
		sym, snapped = k.speculateFull(oi, oj, ok, vid)
	}
	codes, recons, esc := k.tryQuantize(oi, oj, ok, vid, snapped)
	k.commit(vid, own, sym, codes, recons, esc)
}

// deriveBound is Algorithm 2 lines 5–17: the minimum over adjacent cells
// of min(Ψ, τ′), with the sign-uniformity relaxation.
func (k *kernel) deriveBound(vid int) (xi int64, relaxed bool) {
	if k.tel.deriveNS != nil {
		defer k.tel.deriveNS.AddSince(time.Now())
	}
	k.cellBuf = k.dim.vertexCells(vid, k.cellBuf[:0])
	xi = k.tau
	orientOnly := k.blk.opts.OrientationOnly
	relax := !k.blk.opts.DisableRelaxation
	for _, c := range k.cellBuf {
		if !k.cellValid[c] {
			continue
		}
		if k.cpCell[c] {
			return 0, false
		}
		cb, rlx := k.dim.cellBound(vid, c, k.tau, orientOnly, relax)
		if rlx {
			relaxed = true
		}
		if cb < xi {
			xi = cb
		}
	}
	return xi, relaxed
}

// speculateST1 relaxes the derived bound and accepts when the realized
// quantization error still meets the derived bound.
func (k *kernel) speculateST1(oi, oj, ok, vid int, cpA bool) (uint8, int64) {
	if cpA {
		return quantizer.LosslessSym, 0
	}
	xi, _ := k.deriveBound(vid)
	if xi <= 0 {
		return quantizer.LosslessSym, 0
	}
	nl := k.blk.opts.Spec.retries()
	// Relax the bound, capped at max(τ′, ξ): ST1 recovers the precision
	// lost when the derived bound is floor-snapped onto the exponent
	// grid, and never discards a relaxation-derived ξ above τ′; pushing
	// past both is left to the FN-level targets.
	try := xi << uint(nl)
	limit := k.tau
	if xi > limit {
		limit = xi
	}
	if try > limit {
		try = limit
	}
	fails := 0
	for {
		k.stats.SpecTrials++
		k.tel.specTrials.Inc()
		sym, snapped := quantizer.BoundSym(try, k.tau)
		_, recons, _ := k.tryQuantize(oi, oj, ok, vid, snapped)
		within := true
		for c := 0; c < k.blk.nc; c++ {
			if absDiff(recons[c], k.comps[c][vid]) > xi {
				within = false
				break
			}
		}
		if within {
			return sym, snapped
		}
		k.stats.SpecFails++
		k.tel.specFails.Inc()
		fails++
		if fails == 1 {
			k.recordRollback(vid)
		}
		if fails > nl {
			return k.specCutoff(vid)
		}
		try >>= 1
		if try <= 0 {
			return k.specCutoff(vid)
		}
	}
}

// speculateFN (ST2/ST3) skips derivation: it compresses with a relaxed
// bound and verifies that no adjacent cell gains a critical point.
func (k *kernel) speculateFN(oi, oj, ok, vid int, cpA bool) (uint8, int64) {
	if cpA {
		return quantizer.LosslessSym, 0
	}
	return k.speculateVerify(oi, oj, ok, vid, func(c int) bool {
		return !k.det.CellContainsLocal(c, &k.pred)
	})
}

// speculateFull (ST4) verifies detection result and critical point type on
// every adjacent cell, including cells that contain critical points.
func (k *kernel) speculateFull(oi, oj, ok, vid int) (uint8, int64) {
	return k.speculateVerify(oi, oj, ok, vid, func(c int) bool {
		if k.det.CellContainsLocal(c, &k.pred) != k.cpCell[c] {
			return false
		}
		return !k.cpCell[c] || k.det.CellType(c) == k.origType[c]
	})
}

// speculateVerify is the trial loop of Fig. 2: relax, compress, verify the
// target on the adjacent cells with the candidate reconstruction in
// place, restrict on failure, and hard cut-off to lossless after n_l
// failures.
func (k *kernel) speculateVerify(oi, oj, ok, vid int, check func(c int) bool) (uint8, int64) {
	nl := k.blk.opts.Spec.retries()
	try := k.tau << uint(nl)
	fails := 0
	var orig [maxComps]int64
	for c := 0; c < k.blk.nc; c++ {
		orig[c] = k.comps[c][vid]
	}
	for {
		k.stats.SpecTrials++
		k.tel.specTrials.Inc()
		sym, snapped := quantizer.BoundSym(try, k.tau)
		_, recons, _ := k.tryQuantize(oi, oj, ok, vid, snapped)
		for c := 0; c < k.blk.nc; c++ {
			k.comps[c][vid] = recons[c]
		}
		okAll := true
		k.cellBuf = k.dim.vertexCells(vid, k.cellBuf[:0])
		for _, c := range k.cellBuf {
			if k.cellValid[c] && !check(c) {
				okAll = false
				break
			}
		}
		for c := 0; c < k.blk.nc; c++ {
			k.comps[c][vid] = orig[c]
		}
		if okAll {
			return sym, snapped
		}
		k.stats.SpecFails++
		k.tel.specFails.Inc()
		fails++
		if fails == 1 {
			k.recordRollback(vid)
		}
		if fails > nl {
			return k.specCutoff(vid)
		}
		try >>= 1
		if try <= 0 {
			return k.specCutoff(vid)
		}
	}
}

// recordRollback flight-records the first rejected speculation trial of a
// vertex (Code = vertex id). Later restrictions of the same vertex are
// expected behavior and stay off the ring.
func (k *kernel) recordRollback(vid int) {
	k.blk.opts.Rec.Record(flightrec.Event{Kind: flightrec.KindRollback, Subsystem: "core",
		Slab: int32(k.blk.opts.RecSlab), Attempt: -1, Code: int64(vid),
		Detail: "speculation trial rejected"})
}

// specCutoff records the hard cut-off to lossless storage after
// speculation exhausts its retry budget (n_l failures or a trial bound
// shrunk to zero).
func (k *kernel) specCutoff(vid int) (uint8, int64) {
	k.stats.SpecCutoffs++
	k.tel.specCutoffs.Inc()
	k.blk.opts.Rec.Record(flightrec.Event{Kind: flightrec.KindRollback, Subsystem: "core",
		Slab: int32(k.blk.opts.RecSlab), Attempt: -1, Code: int64(vid),
		Detail: "speculation cut off to lossless"})
	return quantizer.LosslessSym, 0
}

// tryQuantize quantizes every component of the vertex against the snapped
// bound without committing anything.
func (k *kernel) tryQuantize(oi, oj, ok, vid int, snapped int64) (codes, recons [maxComps]int64, esc [maxComps]bool) {
	own := k.ownIdx(oi, oj, ok)
	for c := 0; c < k.blk.nc; c++ {
		var pred int64
		if k.temporal {
			pred = k.prev[c][own]
		} else {
			pred = predictLorenzo(k.own[c], k.ownDone, k.blk.nx, k.blk.ny, oi, oj, ok)
		}
		code, recon, qok := quantizer.Quantize(k.comps[c][vid], pred, snapped)
		if !qok {
			esc[c] = true
			recons[c] = k.comps[c][vid]
		} else {
			codes[c] = code
			recons[c] = recon
		}
	}
	return codes, recons, esc
}

// predictLorenzo is the masked Lorenzo predictor restricted to own,
// already-processed neighbors, shared by the encoder and the decoder —
// which guarantees bit-identical predictions even in the two-phase visit
// order. With ok == 0 on an nz == 1 block the Z terms vanish and the
// stencil reduces exactly to the 2D Lorenzo predictor.
func predictLorenzo(z []int64, done []bool, nx, ny, oi, oj, ok int) int64 {
	idx := (ok*ny+oj)*nx + oi
	sx, sy, sz := 1, nx, nx*ny
	av := func(di, dj, dk int) bool {
		if oi+di < 0 || oj+dj < 0 || ok+dk < 0 {
			return false
		}
		return done[idx+di*sx+dj*sy+dk*sz]
	}
	x := av(-1, 0, 0)
	y := av(0, -1, 0)
	zz := av(0, 0, -1)
	xy := av(-1, -1, 0)
	xz := av(-1, 0, -1)
	yz := av(0, -1, -1)
	xyz := av(-1, -1, -1)
	switch {
	case x && y && zz && xy && xz && yz && xyz:
		return z[idx-sx] + z[idx-sy] + z[idx-sz] -
			z[idx-sx-sy] - z[idx-sx-sz] - z[idx-sy-sz] +
			z[idx-sx-sy-sz]
	case x && y && xy:
		return z[idx-sx] + z[idx-sy] - z[idx-sx-sy]
	case x && zz && xz:
		return z[idx-sx] + z[idx-sz] - z[idx-sx-sz]
	case y && zz && yz:
		return z[idx-sy] + z[idx-sz] - z[idx-sy-sz]
	case x:
		return z[idx-sx]
	case y:
		return z[idx-sy]
	case zz:
		return z[idx-sz]
	default:
		return 0
	}
}

// commit emits the streams for the vertex and overwrites the working
// arrays with the decompressed values (Algorithm 2 lines 18–22).
func (k *kernel) commit(vid, own int, sym uint8, codes, recons [maxComps]int64, esc [maxComps]bool) {
	k.stats.Vertices++
	k.tel.vertices.Inc()
	k.tel.boundExp.Observe(int64(sym))
	if sym == quantizer.LosslessSym {
		k.stats.Lossless++
		k.tel.lossless.Inc()
	}
	for c := 0; c < k.blk.nc; c++ {
		if esc[c] {
			k.stats.Literals++
			k.tel.literals.Inc()
		}
	}
	k.expSyms = append(k.expSyms, uint32(sym))
	for c := 0; c < k.blk.nc; c++ {
		if esc[c] {
			k.codeSyms = append(k.codeSyms, escapeSym)
			k.literals = appendLiteral(k.literals, k.comps[c][vid])
		} else {
			k.codeSyms = append(k.codeSyms, huffman.Zigzag(codes[c]))
		}
	}
	for c := 0; c < k.blk.nc; c++ {
		k.comps[c][vid] = recons[c]
		k.own[c][own] = recons[c]
	}
	k.ownDone[own] = true
}

// finish packs the compressed block.
func (k *kernel) finish() ([]byte, error) {
	if k.finished {
		return nil, errors.New("core: Finish called twice")
	}
	k.finished = true
	// The block's predicate work is done: publish the batched filter
	// counters (close() flushes again for kernels that never finish;
	// Flush resets, so the double call cannot double-count).
	k.pred.Flush()
	h := header{
		NDim:  k.blk.ndim,
		NX:    k.blk.nx,
		NY:    k.blk.ny,
		Shift: k.blk.transform.Shift,
		Tau:   k.tau,
		Spec:  k.blk.opts.Spec,
		Order: orderRaster,
	}
	if k.blk.ndim == 3 {
		h.NZ = k.blk.nz
	}
	if k.blk.twoPhase {
		h.Order = orderTwoPhase
	}
	h.HasGhost = k.blk.neighbor
	h.Border = k.blk.losslessBord
	h.Temporal = k.temporal
	entropy := k.tel.stage("entropy-code")
	expStream := huffman.Compress(k.expSyms)
	codeStream := huffman.Compress(k.codeSyms)
	h.HasCRC = true
	h.PayloadCRC = h.payloadChecksum(expStream, codeStream, k.literals)
	blob, err := encoder.Pack(h.marshal(), expStream, codeStream, k.literals)
	entropy.End()
	k.tel.finish()
	return blob, err
}

// decompressed returns the reconstructed own block as float32 components
// (available after all phases have run). Useful for in-process
// verification without a decode round trip.
func (k *kernel) decompressed() [][]float32 {
	n := safedim.MustProduct(k.blk.nx, k.blk.ny, k.blk.nz)
	out := make([][]float32, k.blk.nc)
	for c := 0; c < k.blk.nc; c++ {
		out[c] = make([]float32, n)
		k.blk.transform.ToFloat(k.own[c], out[c])
	}
	return out
}
