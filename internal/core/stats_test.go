package core

import (
	"testing"

	"repro/internal/fixed"
	"repro/internal/telemetry"
)

// TestCompressStats2D checks that CompressField2DStats surfaces the
// encoder stats and that they are internally consistent.
func TestCompressStats2D(t *testing.T) {
	f := smooth2D(11, 48, 40)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Speculation{NoSpec, ST1, ST2, ST3, ST4} {
		blob, st, err := CompressField2DStats(f, tr, Options{Tau: 0.05, Spec: spec})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if len(blob) == 0 {
			t.Fatalf("%v: empty blob", spec)
		}
		if st.Vertices != f.NX*f.NY {
			t.Errorf("%v: Vertices = %d, want %d", spec, st.Vertices, f.NX*f.NY)
		}
		if st.Lossless > st.Vertices {
			t.Errorf("%v: Lossless %d exceeds Vertices %d", spec, st.Lossless, st.Vertices)
		}
		if spec == NoSpec && st.SpecTrials != 0 {
			t.Errorf("NoSpec must not speculate, got %d trials", st.SpecTrials)
		}
		if spec != NoSpec && st.SpecTrials == 0 {
			t.Errorf("%v: expected speculation trials", spec)
		}
		if st.SpecFails > st.SpecTrials {
			t.Errorf("%v: SpecFails %d exceeds SpecTrials %d", spec, st.SpecFails, st.SpecTrials)
		}
		if st.SpecCutoffs > st.SpecFails {
			t.Errorf("%v: SpecCutoffs %d exceeds SpecFails %d", spec, st.SpecCutoffs, st.SpecFails)
		}
	}
}

// TestCompressStats3D checks the 3D path reports the same stat fields
// with the same meaning (parity with the 2D engine).
func TestCompressStats3D(t *testing.T) {
	f := smooth3D(7, 14, 12, 10)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Speculation{NoSpec, ST1, ST4} {
		_, st, err := CompressField3DStats(f, tr, Options{Tau: 0.05, Spec: spec})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if st.Vertices != f.NX*f.NY*f.NZ {
			t.Errorf("%v: Vertices = %d, want %d", spec, st.Vertices, f.NX*f.NY*f.NZ)
		}
		if spec == NoSpec && st.SpecTrials != 0 {
			t.Errorf("NoSpec must not speculate, got %d trials", st.SpecTrials)
		}
		if spec != NoSpec && st.SpecTrials == 0 {
			t.Errorf("%v: expected speculation trials", spec)
		}
		if st.SpecCutoffs > st.SpecFails {
			t.Errorf("%v: SpecCutoffs %d exceeds SpecFails %d", spec, st.SpecCutoffs, st.SpecFails)
		}
	}
}

// TestTelemetryMatchesStats compresses with a collector attached and
// cross-checks every counter against the Stats struct, plus the stage
// span tree.
func TestTelemetryMatchesStats(t *testing.T) {
	f := smooth2D(3, 40, 32)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	_, st, err := CompressField2DStats(f, tr, Options{Tau: 0.02, Spec: ST3, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	p := "core.2d.st3."
	for name, want := range map[string]int{
		p + "vertices":        st.Vertices,
		p + "lossless":        st.Lossless,
		p + "relaxed":         st.Relaxed,
		p + "spec_trials":     st.SpecTrials,
		p + "spec_fails":      st.SpecFails,
		p + "spec_cutoffs":    st.SpecCutoffs,
		p + "literal_escapes": st.Literals,
	} {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	h, ok := snap.Histograms["core.2d.bound_exp_sym"]
	if !ok || h.Count != int64(st.Vertices) {
		t.Errorf("bound_exp_sym histogram count = %+v, want %d observations", h, st.Vertices)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "core.compress2d" {
		t.Fatalf("expected one core.compress2d root span, got %+v", snap.Spans)
	}
	stages := make(map[string]bool)
	for _, c := range snap.Spans[0].Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"fixed-convert", "cp-precompute", "process", "entropy-code"} {
		if !stages[want] {
			t.Errorf("missing stage span %q (got %v)", want, stages)
		}
	}
}

// TestTelemetryParentSpan checks that a caller-supplied span parents the
// encoder stages instead of a new root span.
func TestTelemetryParentSpan(t *testing.T) {
	f := smooth3D(5, 10, 10, 8)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	rank := tel.Span("rank0")
	enc, err := NewEncoder3D(Block3D{
		NX: f.NX, NY: f.NY, NZ: f.NZ, U: f.U, V: f.V, W: f.W,
		Transform: tr, Opts: Options{Tau: 0.05, Tel: tel, TelSpan: rank},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc.Run()
	if _, err := enc.Finish(); err != nil {
		t.Fatal(err)
	}
	rank.End()
	snap := tel.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "rank0" {
		t.Fatalf("expected stages under rank0, got %+v", snap.Spans)
	}
	if len(snap.Spans[0].Children) == 0 {
		t.Error("rank0 span has no stage children")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Vertices: 1, Lossless: 2, Relaxed: 3, SpecTrials: 4, SpecFails: 5, SpecCutoffs: 6, Literals: 7}
	b := a
	a.Add(b)
	want := Stats{Vertices: 2, Lossless: 4, Relaxed: 6, SpecTrials: 8, SpecFails: 10, SpecCutoffs: 12, Literals: 14}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}
