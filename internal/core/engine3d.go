package core

import (
	"repro/internal/fixed"
)

// Block3D describes one (possibly distributed) 3D sub-domain to compress.
type Block3D struct {
	NX, NY, NZ int
	U, V, W    []float32
	Transform  fixed.Transform
	Opts       Options
	// Global placement for SoS consistency (GlobalNX == 0 ⇒ whole domain).
	GlobalX0, GlobalY0, GlobalZ0 int
	GlobalNX, GlobalNY, GlobalNZ int
	// Neighbor marks which faces adjoin another rank (SideMinX..SideMaxZ).
	Neighbor       [6]bool
	LosslessBorder bool
	TwoPhase       bool
	// PrevU/PrevV/PrevW enable temporal prediction; see Block2D.
	PrevU, PrevV, PrevW []float32
}

// Encoder3D compresses one 3D block: a thin adapter over the
// dimension-generic kernel. See Encoder2D for the lifecycle.
type Encoder3D struct {
	k *kernel
}

// NewEncoder3D validates the block and allocates the extended arrays.
func NewEncoder3D(blk Block3D) (*Encoder3D, error) {
	spec := blockSpec{
		ndim: 3, nc: 3,
		nx: blk.NX, ny: blk.NY, nz: blk.NZ,
		comps:     [maxComps][]float32{blk.U, blk.V, blk.W},
		prev:      [maxComps][]float32{blk.PrevU, blk.PrevV, blk.PrevW},
		transform: blk.Transform,
		opts:      blk.Opts,
		gx0:       blk.GlobalX0, gy0: blk.GlobalY0, gz0: blk.GlobalZ0,
		gnx: blk.GlobalNX, gny: blk.GlobalNY, gnz: blk.GlobalNZ,
		losslessBord: blk.LosslessBorder,
		twoPhase:     blk.TwoPhase,
		neighbor:     blk.Neighbor,
	}
	k, err := newKernel(spec)
	if err != nil {
		return nil, err
	}
	return &Encoder3D{k: k}, nil
}

// SetGhostFace supplies fixed-point ghost values for one face, laid out
// fast-axis first: X faces are NY×NZ, Y faces NX×NZ, Z faces NX×NY.
func (e *Encoder3D) SetGhostFace(side int, u, v, w []int64) error {
	return e.k.setGhostPlane(side, [][]int64{u, v, w})
}

// SetGhostPlane is the dimension-generic form of SetGhostFace (one slice
// per component), used by the distributed drivers.
func (e *Encoder3D) SetGhostPlane(side int, vals [][]int64) error {
	return e.k.setGhostPlane(side, vals)
}

// BorderFace returns the current fixed-point values of one own border
// face (fast axis first, matching SetGhostFace).
func (e *Encoder3D) BorderFace(side int) (u, v, w []int64) {
	p := e.k.borderPlane(side)
	if p == nil {
		return nil, nil, nil
	}
	return p[0], p[1], p[2]
}

// BorderPlane is the dimension-generic form of BorderFace (one slice per
// component), used by the distributed drivers.
func (e *Encoder3D) BorderPlane(side int) [][]int64 {
	return e.k.borderPlane(side)
}

// Prepare precomputes the critical point map.
func (e *Encoder3D) Prepare() { e.k.prepare() }

// Run compresses every vertex in raster order; see Encoder2D.Run for the
// two-phase behaviour.
func (e *Encoder3D) Run() { e.k.run() }

// RunPhase1 compresses every vertex not on a neighbor-facing max plane.
func (e *Encoder3D) RunPhase1() { e.k.runPhase1() }

// RunPhase2 compresses the max-plane vertices after the decompressed
// ghost faces have been refreshed.
func (e *Encoder3D) RunPhase2() { e.k.runPhase2() }

// Finish packs the compressed block.
func (e *Encoder3D) Finish() ([]byte, error) { return e.k.finish() }

// Decompressed returns the reconstructed own block as float32 components.
func (e *Encoder3D) Decompressed() (u, v, w []float32) {
	d := e.k.decompressed()
	return d[0], d[1], d[2]
}

// Stats reports what the encoder did so far.
func (e *Encoder3D) Stats() Stats { return e.k.stats }

// Close releases the encoder's pooled working buffers; see
// Encoder2D.Close for the contract.
func (e *Encoder3D) Close() { e.k.close() }
