package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cp"
	"repro/internal/derive"
	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/quantizer"
)

// Block3D describes one (possibly distributed) 3D sub-domain to compress.
type Block3D struct {
	NX, NY, NZ int
	U, V, W    []float32
	Transform  fixed.Transform
	Opts       Options
	// Global placement for SoS consistency (GlobalNX == 0 ⇒ whole domain).
	GlobalX0, GlobalY0, GlobalZ0 int
	GlobalNX, GlobalNY, GlobalNZ int
	// Neighbor marks which faces adjoin another rank (SideMinX..SideMaxZ).
	Neighbor       [6]bool
	LosslessBorder bool
	TwoPhase       bool
	// PrevU/PrevV/PrevW enable temporal prediction; see Block2D.
	PrevU, PrevV, PrevW []float32
}

// Encoder3D compresses one 3D block; see Encoder2D for the lifecycle.
type Encoder3D struct {
	blk                 Block3D
	tau                 int64
	extNX, extNY, extNZ int
	offX, offY, offZ    int
	u, v, w             []int64
	ownU, ownV, ownW    []int64
	prevU, prevV, prevW []int64
	valid               []bool
	ownDone             []bool
	mesh                field.Mesh3D
	det                 *cp.Detector3D
	cellValid           []bool
	cpCell              []bool
	origType            map[int]cp.Type
	cpAdj               []bool
	expSyms             []uint32
	codeSyms            []uint32
	literals            []byte
	cellBuf             []int
	stats               Stats
	tel                 engineTel
	prepared, finished  bool
}

// NewEncoder3D validates the block and allocates the extended arrays.
func NewEncoder3D(blk Block3D) (*Encoder3D, error) {
	if err := blk.Opts.Validate(); err != nil {
		return nil, err
	}
	if blk.NX < 2 || blk.NY < 2 || blk.NZ < 2 {
		return nil, errors.New("core: block must be at least 2x2x2")
	}
	n := blk.NX * blk.NY * blk.NZ
	if len(blk.U) != n || len(blk.V) != n || len(blk.W) != n {
		return nil, errors.New("core: component length mismatch")
	}
	if blk.GlobalNX == 0 {
		blk.GlobalNX, blk.GlobalNY, blk.GlobalNZ = blk.NX, blk.NY, blk.NZ
	}
	if blk.Opts.Tau < blk.Transform.Resolution() {
		return nil, fmt.Errorf("core: Tau %g is below the fixed-point resolution %g of this field; use lossless storage instead",
			blk.Opts.Tau, blk.Transform.Resolution())
	}
	e := &Encoder3D{blk: blk, tau: blk.Transform.Bound(blk.Opts.Tau)}
	e.extNX, e.extNY, e.extNZ = blk.NX, blk.NY, blk.NZ
	if blk.TwoPhase {
		if blk.Neighbor[SideMinX] {
			e.offX = 1
			e.extNX++
		}
		if blk.Neighbor[SideMaxX] {
			e.extNX++
		}
		if blk.Neighbor[SideMinY] {
			e.offY = 1
			e.extNY++
		}
		if blk.Neighbor[SideMaxY] {
			e.extNY++
		}
		if blk.Neighbor[SideMinZ] {
			e.offZ = 1
			e.extNZ++
		}
		if blk.Neighbor[SideMaxZ] {
			e.extNZ++
		}
	}
	en := e.extNX * e.extNY * e.extNZ
	e.u = make([]int64, en)
	e.v = make([]int64, en)
	e.w = make([]int64, en)
	e.valid = make([]bool, en)
	e.ownU = make([]int64, n)
	e.ownV = make([]int64, n)
	e.ownW = make([]int64, n)
	e.ownDone = make([]bool, n)
	if blk.PrevU != nil || blk.PrevV != nil || blk.PrevW != nil {
		if len(blk.PrevU) != n || len(blk.PrevV) != n || len(blk.PrevW) != n {
			return nil, errors.New("core: previous-frame length mismatch")
		}
		e.prevU = make([]int64, n)
		e.prevV = make([]int64, n)
		e.prevW = make([]int64, n)
		blk.Transform.ToFixed(blk.PrevU, e.prevU)
		blk.Transform.ToFixed(blk.PrevV, e.prevV)
		blk.Transform.ToFixed(blk.PrevW, e.prevW)
	}
	e.mesh = field.Mesh3D{NX: e.extNX, NY: e.extNY, NZ: e.extNZ}
	e.tel = newEngineTel(blk.Opts, "3d")
	convert := e.tel.stage("fixed-convert")
	row := make([]int64, blk.NX)
	for k := 0; k < blk.NZ; k++ {
		for j := 0; j < blk.NY; j++ {
			src := (k*blk.NY + j) * blk.NX
			dst := ((k+e.offZ)*e.extNY+(j+e.offY))*e.extNX + e.offX
			blk.Transform.ToFixed(blk.U[src:src+blk.NX], row)
			copy(e.u[dst:], row)
			blk.Transform.ToFixed(blk.V[src:src+blk.NX], row)
			copy(e.v[dst:], row)
			blk.Transform.ToFixed(blk.W[src:src+blk.NX], row)
			copy(e.w[dst:], row)
			for i := 0; i < blk.NX; i++ {
				e.valid[dst+i] = true
			}
		}
	}
	convert.End()
	return e, nil
}

// faceDims returns the in-face dimensions (d0 fast axis, d1 slow axis) of
// a ghost face.
func (e *Encoder3D) faceDims(side int) (d0, d1 int) {
	switch side {
	case SideMinX, SideMaxX:
		return e.blk.NY, e.blk.NZ
	case SideMinY, SideMaxY:
		return e.blk.NX, e.blk.NZ
	default:
		return e.blk.NX, e.blk.NY
	}
}

// SetGhostFace supplies fixed-point ghost values for one face, laid out
// with faceDims (fast axis first).
func (e *Encoder3D) SetGhostFace(side int, u, v, w []int64) error {
	if !e.blk.TwoPhase || side < 0 || side > SideMaxZ || !e.blk.Neighbor[side] {
		return fmt.Errorf("core: no ghost layer on side %d", side)
	}
	d0, d1 := e.faceDims(side)
	if len(u) != d0*d1 || len(v) != d0*d1 || len(w) != d0*d1 {
		return errors.New("core: ghost face length mismatch")
	}
	for b := 0; b < d1; b++ {
		for a := 0; a < d0; a++ {
			idx := e.faceIndex(side, a, b)
			f := b*d0 + a
			e.u[idx], e.v[idx], e.w[idx] = u[f], v[f], w[f]
			e.valid[idx] = true
		}
	}
	return nil
}

// faceIndex maps in-face coordinates (a fast, b slow) to the extended
// array index of the ghost (for SetGhostFace) of the given side.
func (e *Encoder3D) faceIndex(side, a, b int) int {
	var i, j, k int
	switch side {
	case SideMinX:
		i, j, k = 0, a+e.offY, b+e.offZ
	case SideMaxX:
		i, j, k = e.extNX-1, a+e.offY, b+e.offZ
	case SideMinY:
		i, j, k = a+e.offX, 0, b+e.offZ
	case SideMaxY:
		i, j, k = a+e.offX, e.extNY-1, b+e.offZ
	case SideMinZ:
		i, j, k = a+e.offX, b+e.offY, 0
	default:
		i, j, k = a+e.offX, b+e.offY, e.extNZ-1
	}
	return (k*e.extNY+j)*e.extNX + i
}

// BorderFace returns the current fixed-point values of one own border
// face (fast axis first, per faceDims).
func (e *Encoder3D) BorderFace(side int) (u, v, w []int64) {
	d0, d1 := e.faceDims(side)
	u = make([]int64, d0*d1)
	v = make([]int64, d0*d1)
	w = make([]int64, d0*d1)
	for b := 0; b < d1; b++ {
		for a := 0; a < d0; a++ {
			var i, j, k int
			switch side {
			case SideMinX:
				i, j, k = e.offX, a+e.offY, b+e.offZ
			case SideMaxX:
				i, j, k = e.offX+e.blk.NX-1, a+e.offY, b+e.offZ
			case SideMinY:
				i, j, k = a+e.offX, e.offY, b+e.offZ
			case SideMaxY:
				i, j, k = a+e.offX, e.offY+e.blk.NY-1, b+e.offZ
			case SideMinZ:
				i, j, k = a+e.offX, b+e.offY, e.offZ
			default:
				i, j, k = a+e.offX, b+e.offY, e.offZ+e.blk.NZ-1
			}
			idx := (k*e.extNY+j)*e.extNX + i
			f := b*d0 + a
			u[f], v[f], w[f] = e.u[idx], e.v[idx], e.w[idx]
		}
	}
	return u, v, w
}

// Prepare precomputes the critical point map.
func (e *Encoder3D) Prepare() {
	precompute := e.tel.stage("cp-precompute")
	defer precompute.End()
	gx0 := e.blk.GlobalX0 - e.offX
	gy0 := e.blk.GlobalY0 - e.offY
	gz0 := e.blk.GlobalZ0 - e.offZ
	gnx, gny := e.blk.GlobalNX, e.blk.GlobalNY
	e.det = &cp.Detector3D{
		Mesh: e.mesh, U: e.u, V: e.v, W: e.w,
		GlobalID: func(v int) int {
			i := v % e.extNX
			j := (v / e.extNX) % e.extNY
			k := v / (e.extNX * e.extNY)
			return ((gz0+k)*gny+(gy0+j))*gnx + (gx0 + i)
		},
	}
	nc := e.mesh.NumCells()
	e.cellValid = make([]bool, nc)
	e.cpCell = make([]bool, nc)
	for c := 0; c < nc; c++ {
		vs := e.mesh.CellVertices(c)
		ok := true
		zero := true
		for _, vi := range vs {
			if !e.valid[vi] {
				ok = false
				break
			}
			if e.u[vi] != 0 || e.v[vi] != 0 || e.w[vi] != 0 {
				zero = false
			}
		}
		if ok {
			e.cellValid[c] = true
			if !zero {
				e.cpCell[c] = e.det.CellContains(c)
			}
		}
	}
	if e.blk.Opts.Spec == ST4 {
		e.origType = make(map[int]cp.Type)
		for c := 0; c < nc; c++ {
			if e.cpCell[c] {
				e.origType[c] = e.det.CellType(c)
			}
		}
	}
	e.cpAdj = make([]bool, e.blk.NX*e.blk.NY*e.blk.NZ)
	for ok2 := 0; ok2 < e.blk.NZ; ok2++ {
		for oj := 0; oj < e.blk.NY; oj++ {
			for oi := 0; oi < e.blk.NX; oi++ {
				vid := e.extIdx(oi, oj, ok2)
				e.cellBuf = e.mesh.VertexCells(vid, e.cellBuf[:0])
				for _, c := range e.cellBuf {
					if e.cellValid[c] && e.cpCell[c] {
						e.cpAdj[(ok2*e.blk.NY+oj)*e.blk.NX+oi] = true
						break
					}
				}
			}
		}
	}
	e.prepared = true
}

func (e *Encoder3D) extIdx(oi, oj, ok int) int {
	return ((ok+e.offZ)*e.extNY+(oj+e.offY))*e.extNX + (oi + e.offX)
}

// Run compresses every vertex in raster order; see Encoder2D.Run for the
// two-phase behaviour.
func (e *Encoder3D) Run() {
	if !e.prepared {
		e.Prepare()
	}
	if e.blk.TwoPhase {
		e.RunPhase1()
		e.RunPhase2()
		return
	}
	process := e.tel.stage("process")
	for ok := 0; ok < e.blk.NZ; ok++ {
		for oj := 0; oj < e.blk.NY; oj++ {
			for oi := 0; oi < e.blk.NX; oi++ {
				e.processVertex(oi, oj, ok)
			}
		}
	}
	process.End()
}

// RunPhase1 compresses every vertex not on a neighbor-facing max plane.
func (e *Encoder3D) RunPhase1() {
	if !e.prepared {
		e.Prepare()
	}
	process := e.tel.stage("process-phase1")
	defer process.End()
	for ok := 0; ok < e.blk.NZ; ok++ {
		for oj := 0; oj < e.blk.NY; oj++ {
			for oi := 0; oi < e.blk.NX; oi++ {
				if !e.phase2Vertex(oi, oj, ok) {
					e.processVertex(oi, oj, ok)
				}
			}
		}
	}
}

// RunPhase2 compresses the max-plane vertices after the decompressed
// ghost faces have been refreshed.
func (e *Encoder3D) RunPhase2() {
	process := e.tel.stage("process-phase2")
	defer process.End()
	for ok := 0; ok < e.blk.NZ; ok++ {
		for oj := 0; oj < e.blk.NY; oj++ {
			for oi := 0; oi < e.blk.NX; oi++ {
				if e.phase2Vertex(oi, oj, ok) {
					e.processVertex(oi, oj, ok)
				}
			}
		}
	}
}

func (e *Encoder3D) phase2Vertex(oi, oj, ok int) bool {
	return (e.blk.Neighbor[SideMaxX] && oi == e.blk.NX-1) ||
		(e.blk.Neighbor[SideMaxY] && oj == e.blk.NY-1) ||
		(e.blk.Neighbor[SideMaxZ] && ok == e.blk.NZ-1)
}

func (e *Encoder3D) forcedLossless(oi, oj, ok int) bool {
	planes := 0
	if e.blk.Neighbor[SideMinX] && oi == 0 {
		planes++
	}
	if e.blk.Neighbor[SideMaxX] && oi == e.blk.NX-1 {
		planes++
	}
	if e.blk.Neighbor[SideMinY] && oj == 0 {
		planes++
	}
	if e.blk.Neighbor[SideMaxY] && oj == e.blk.NY-1 {
		planes++
	}
	if e.blk.Neighbor[SideMinZ] && ok == 0 {
		planes++
	}
	if e.blk.Neighbor[SideMaxZ] && ok == e.blk.NZ-1 {
		planes++
	}
	if e.blk.LosslessBorder {
		return planes >= 1
	}
	if e.blk.TwoPhase {
		return planes >= 2
	}
	return false
}

func (e *Encoder3D) processVertex(oi, oj, ok int) {
	vid := e.extIdx(oi, oj, ok)
	own := (ok*e.blk.NY+oj)*e.blk.NX + oi
	spec := e.blk.Opts.Spec
	cpA := e.cpAdj[own]

	var sym uint8
	var snapped int64
	switch {
	case e.forcedLossless(oi, oj, ok):
		sym, snapped = quantizer.LosslessSym, 0
	case spec == NoSpec:
		xi := int64(0)
		if !cpA {
			var relaxed bool
			xi, relaxed = e.deriveBound(vid)
			if relaxed {
				e.stats.Relaxed++
				e.tel.relaxed.Inc()
			}
		}
		sym, snapped = quantizer.BoundSym(xi, e.tau)
	case spec == ST1:
		sym, snapped = e.speculateST1(oi, oj, ok, vid, cpA)
	case spec == ST2 || spec == ST3:
		sym, snapped = e.speculateFN(oi, oj, ok, vid, cpA)
	default: // ST4
		sym, snapped = e.speculateFull(oi, oj, ok, vid)
	}
	codes, recons, esc := e.tryQuantize(oi, oj, ok, vid, snapped)
	e.commit(vid, own, sym, codes, recons, esc)
}

func (e *Encoder3D) deriveBound(vid int) (xi int64, relaxed bool) {
	if e.tel.deriveNS != nil {
		defer e.tel.deriveNS.AddSince(time.Now())
	}
	e.cellBuf = e.mesh.VertexCells(vid, e.cellBuf[:0])
	xi = e.tau
	for _, c := range e.cellBuf {
		if !e.cellValid[c] {
			continue
		}
		if e.cpCell[c] {
			return 0, false
		}
		vs := e.mesh.CellVertices(c)
		a, b, cc := otherThree(vs, vid)
		var cb int64
		if e.blk.Opts.OrientationOnly {
			cb = derive.Psi3DOrientationOnly(e.u, e.v, e.w, a, b, cc, vid)
		} else {
			cb = derive.Psi3D(e.u, e.v, e.w, a, b, cc, vid)
		}
		if cb > e.tau {
			cb = e.tau
		}
		if !e.blk.Opts.DisableRelaxation {
			for _, z := range [3][]int64{e.u, e.v, e.w} {
				s := sgn(z[vs[0]])
				if s != 0 && sgn(z[vs[1]]) == s && sgn(z[vs[2]]) == s && sgn(z[vs[3]]) == s {
					if r := derive.SignPreservingBound(z[vid]); r > cb {
						cb = r
						relaxed = true
					}
				}
			}
		}
		if cb < xi {
			xi = cb
		}
	}
	return xi, relaxed
}

func otherThree(vs [4]int, vid int) (a, b, c int) {
	out := make([]int, 0, 3)
	for _, v := range vs {
		if v != vid {
			out = append(out, v)
		}
	}
	return out[0], out[1], out[2]
}

func (e *Encoder3D) speculateST1(oi, oj, ok, vid int, cpA bool) (uint8, int64) {
	if cpA {
		return quantizer.LosslessSym, 0
	}
	xi, _ := e.deriveBound(vid)
	if xi <= 0 {
		return quantizer.LosslessSym, 0
	}
	nl := e.blk.Opts.Spec.retries()
	// Relax the bound, capped at max(τ′, ξ): ST1 recovers the precision
	// lost when the derived bound is floor-snapped onto the exponent
	// grid, and never discards a relaxation-derived ξ above τ′; pushing
	// past both is left to the FN-level targets.
	try := xi << uint(nl)
	limit := e.tau
	if xi > limit {
		limit = xi
	}
	if try > limit {
		try = limit
	}
	fails := 0
	for {
		e.stats.SpecTrials++
		e.tel.specTrials.Inc()
		sym, snapped := quantizer.BoundSym(try, e.tau)
		_, recons, _ := e.tryQuantize(oi, oj, ok, vid, snapped)
		if absDiff(recons[0], e.u[vid]) <= xi &&
			absDiff(recons[1], e.v[vid]) <= xi &&
			absDiff(recons[2], e.w[vid]) <= xi {
			return sym, snapped
		}
		e.stats.SpecFails++
		e.tel.specFails.Inc()
		fails++
		if fails > nl {
			return e.specCutoff()
		}
		try >>= 1
		if try <= 0 {
			return e.specCutoff()
		}
	}
}

func (e *Encoder3D) speculateFN(oi, oj, ok, vid int, cpA bool) (uint8, int64) {
	if cpA {
		return quantizer.LosslessSym, 0
	}
	return e.speculateVerify(oi, oj, ok, vid, func(c int) bool {
		return !e.det.CellContains(c)
	})
}

func (e *Encoder3D) speculateFull(oi, oj, ok, vid int) (uint8, int64) {
	return e.speculateVerify(oi, oj, ok, vid, func(c int) bool {
		if e.det.CellContains(c) != e.cpCell[c] {
			return false
		}
		return !e.cpCell[c] || e.det.CellType(c) == e.origType[c]
	})
}

func (e *Encoder3D) speculateVerify(oi, oj, ok, vid int, check func(c int) bool) (uint8, int64) {
	nl := e.blk.Opts.Spec.retries()
	try := e.tau << uint(nl)
	fails := 0
	origU, origV, origW := e.u[vid], e.v[vid], e.w[vid]
	for {
		e.stats.SpecTrials++
		e.tel.specTrials.Inc()
		sym, snapped := quantizer.BoundSym(try, e.tau)
		_, recons, _ := e.tryQuantize(oi, oj, ok, vid, snapped)
		e.u[vid], e.v[vid], e.w[vid] = recons[0], recons[1], recons[2]
		okAll := true
		e.cellBuf = e.mesh.VertexCells(vid, e.cellBuf[:0])
		for _, c := range e.cellBuf {
			if e.cellValid[c] && !check(c) {
				okAll = false
				break
			}
		}
		e.u[vid], e.v[vid], e.w[vid] = origU, origV, origW
		if okAll {
			return sym, snapped
		}
		e.stats.SpecFails++
		e.tel.specFails.Inc()
		fails++
		if fails > nl {
			return e.specCutoff()
		}
		try >>= 1
		if try <= 0 {
			return e.specCutoff()
		}
	}
}

// specCutoff records the hard cut-off to lossless storage after
// speculation exhausts its retry budget.
func (e *Encoder3D) specCutoff() (uint8, int64) {
	e.stats.SpecCutoffs++
	e.tel.specCutoffs.Inc()
	return quantizer.LosslessSym, 0
}

func (e *Encoder3D) ownComp(comp int) []int64 {
	switch comp {
	case 0:
		return e.ownU
	case 1:
		return e.ownV
	default:
		return e.ownW
	}
}

func (e *Encoder3D) prevComp(comp int) []int64 {
	switch comp {
	case 0:
		return e.prevU
	case 1:
		return e.prevV
	default:
		return e.prevW
	}
}

func (e *Encoder3D) tryQuantize(oi, oj, ok, vid int, snapped int64) (codes, recons [3]int64, esc [3]bool) {
	for comp, z := range [3][]int64{e.u, e.v, e.w} {
		var pred int64
		if e.prevU != nil {
			pred = e.prevComp(comp)[(ok*e.blk.NY+oj)*e.blk.NX+oi]
		} else {
			pred = predictOwn3D(e.ownComp(comp), e.ownDone, e.blk.NX, e.blk.NY, oi, oj, ok)
		}
		code, recon, qok := quantizer.Quantize(z[vid], pred, snapped)
		if !qok {
			esc[comp] = true
			recons[comp] = z[vid]
		} else {
			codes[comp] = code
			recons[comp] = recon
		}
	}
	return codes, recons, esc
}

// predictOwn3D is the masked Lorenzo predictor shared with the
// decompressor.
func predictOwn3D(z []int64, done []bool, nx, ny, oi, oj, ok int) int64 {
	idx := (ok*ny+oj)*nx + oi
	sx, sy, sz := 1, nx, nx*ny
	av := func(di, dj, dk int) bool {
		if oi+di < 0 || oj+dj < 0 || ok+dk < 0 {
			return false
		}
		return done[idx+di*sx+dj*sy+dk*sz]
	}
	x := av(-1, 0, 0)
	y := av(0, -1, 0)
	zz := av(0, 0, -1)
	xy := av(-1, -1, 0)
	xz := av(-1, 0, -1)
	yz := av(0, -1, -1)
	xyz := av(-1, -1, -1)
	switch {
	case x && y && zz && xy && xz && yz && xyz:
		return z[idx-sx] + z[idx-sy] + z[idx-sz] -
			z[idx-sx-sy] - z[idx-sx-sz] - z[idx-sy-sz] +
			z[idx-sx-sy-sz]
	case x && y && xy:
		return z[idx-sx] + z[idx-sy] - z[idx-sx-sy]
	case x && zz && xz:
		return z[idx-sx] + z[idx-sz] - z[idx-sx-sz]
	case y && zz && yz:
		return z[idx-sy] + z[idx-sz] - z[idx-sy-sz]
	case x:
		return z[idx-sx]
	case y:
		return z[idx-sy]
	case zz:
		return z[idx-sz]
	default:
		return 0
	}
}

func (e *Encoder3D) commit(vid, own int, sym uint8, codes, recons [3]int64, esc [3]bool) {
	e.stats.Vertices++
	e.tel.vertices.Inc()
	e.tel.boundExp.Observe(int64(sym))
	if sym == quantizer.LosslessSym {
		e.stats.Lossless++
		e.tel.lossless.Inc()
	}
	for _, esc1 := range esc {
		if esc1 {
			e.stats.Literals++
			e.tel.literals.Inc()
		}
	}
	e.expSyms = append(e.expSyms, uint32(sym))
	vals := [3]int64{e.u[vid], e.v[vid], e.w[vid]}
	for comp := 0; comp < 3; comp++ {
		if esc[comp] {
			e.codeSyms = append(e.codeSyms, escapeSym)
			e.literals = appendLiteral(e.literals, vals[comp])
		} else {
			e.codeSyms = append(e.codeSyms, huffman.Zigzag(codes[comp]))
		}
	}
	e.u[vid], e.v[vid], e.w[vid] = recons[0], recons[1], recons[2]
	e.ownU[own], e.ownV[own], e.ownW[own] = recons[0], recons[1], recons[2]
	e.ownDone[own] = true
}

// Finish packs the compressed block.
func (e *Encoder3D) Finish() ([]byte, error) {
	if e.finished {
		return nil, errors.New("core: Finish called twice")
	}
	e.finished = true
	h := header{
		NDim:  3,
		NX:    e.blk.NX,
		NY:    e.blk.NY,
		NZ:    e.blk.NZ,
		Shift: e.blk.Transform.Shift,
		Tau:   e.tau,
		Spec:  e.blk.Opts.Spec,
		Order: orderRaster,
	}
	if e.blk.TwoPhase {
		h.Order = orderTwoPhase
	}
	copy(h.HasGhost[:], e.blk.Neighbor[:])
	h.Border = e.blk.LosslessBorder
	h.Temporal = e.prevU != nil
	entropy := e.tel.stage("entropy-code")
	blob, err := encoder.Pack(h.marshal(), huffman.Compress(e.expSyms), huffman.Compress(e.codeSyms), e.literals)
	entropy.End()
	e.tel.finish()
	return blob, err
}

// Stats reports what the encoder did so far.
func (e *Encoder3D) Stats() Stats { return e.stats }

// Decompressed returns the reconstructed own block as float32 components.
func (e *Encoder3D) Decompressed() (u, v, w []float32) {
	n := e.blk.NX * e.blk.NY * e.blk.NZ
	u = make([]float32, n)
	v = make([]float32, n)
	w = make([]float32, n)
	e.blk.Transform.ToFloat(e.ownU, u)
	e.blk.Transform.ToFloat(e.ownV, v)
	e.blk.Transform.ToFloat(e.ownW, w)
	return u, v, w
}
