package core

import (
	"errors"
	"fmt"

	"repro/internal/encoder"
	"repro/internal/huffman"
	"repro/internal/integrity"
	"repro/internal/quantizer"
	"repro/internal/safedim"
)

// The dimension-generic decoder. Decompression replays the visit order
// and the stored bounds only — no critical point detection or bound
// derivation runs, which is why it is several times faster than
// compression. Decompress2D/3D are thin adapters over decodeFixed.

// visitOrder yields the own-coordinate vertices of a block in
// compression order: plain raster, or (two-phase mode) raster excluding
// neighbor-facing max planes followed by a raster over those planes. A
// 2D block passes nz == 1 (and every entry has k == 0).
func visitOrder(nx, ny, nz int, mode orderMode, hasMaxX, hasMaxY, hasMaxZ bool) [][3]int {
	order := make([][3]int, 0, safedim.MustProduct(nx, ny, nz))
	phase2 := func(i, j, k int) bool {
		return (hasMaxX && i == nx-1) || (hasMaxY && j == ny-1) || (hasMaxZ && k == nz-1)
	}
	if mode != orderTwoPhase {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					order = append(order, [3]int{i, j, k})
				}
			}
		}
		return order
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if !phase2(i, j, k) {
					order = append(order, [3]int{i, j, k})
				}
			}
		}
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if phase2(i, j, k) {
					order = append(order, [3]int{i, j, k})
				}
			}
		}
	}
	return order
}

// decodeFixed reconstructs the fixed-point components of a compressed
// block of the expected dimensionality (the component count equals the
// dimensionality). For temporally predicted blocks prevOf must return
// the previous frame's fixed-point components; the dimension adapters
// supply it along with their frame validation.
func decodeFixed(blob []byte, wantDim int, prevOf func(h *header) ([][]int64, error)) (*header, [][]int64, error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return nil, nil, err
	}
	if len(sections) != 4 {
		return nil, nil, errors.New("core: wrong section count")
	}
	var h header
	if err := h.unmarshal(sections[0]); err != nil {
		return nil, nil, err
	}
	if h.NDim != wantDim {
		return nil, nil, fmt.Errorf("core: expected %dD block, got %dD", wantDim, h.NDim)
	}
	// Version-2 blocks checksum the header and the entropy-coded payload;
	// verify before decoding so a flipped bit — whether it lands in a
	// header field or in the payload — surfaces as a typed error, never
	// as a silently wrong field. Version-1 (seed) blocks carry no
	// checksum and decode as before.
	if h.HasCRC {
		got := h.payloadChecksum(sections[1], sections[2], sections[3])
		if got != h.PayloadCRC {
			return nil, nil, &integrity.IntegrityError{
				Container: "block", Section: "payload", Slab: -1,
				Want: h.PayloadCRC, Got: got,
			}
		}
	}
	expSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return nil, nil, fmt.Errorf("core: bound stream: %w", err)
	}
	codeSyms, err := huffman.Decompress(sections[2])
	if err != nil {
		return nil, nil, fmt.Errorf("core: code stream: %w", err)
	}
	literals := sections[3]
	nc := wantDim
	nz := 1
	if h.NDim == 3 {
		nz = h.NZ
	}
	n, err := h.vertexCount()
	if err != nil {
		return nil, nil, err
	}
	if len(expSyms) != n || len(codeSyms) != nc*n {
		return nil, nil, errors.New("core: stream length mismatch")
	}
	var prevs [][]int64
	if h.Temporal {
		if prevs, err = prevOf(&h); err != nil {
			return nil, nil, err
		}
	}
	comps := make([][]int64, nc)
	for c := range comps {
		comps[c] = make([]int64, n)
	}
	done := make([]bool, n)
	order := visitOrder(h.NX, h.NY, nz, h.Order,
		h.HasGhost[SideMaxX], h.HasGhost[SideMaxY], h.NDim == 3 && h.HasGhost[SideMaxZ])
	kth := 0
	for _, ov := range order {
		oi, oj, ok := ov[0], ov[1], ov[2]
		idx := (ok*h.NY+oj)*h.NX + oi
		bound := quantizer.BoundFromSym(uint8(expSyms[kth]), h.Tau)
		for c := 0; c < nc; c++ {
			sym := codeSyms[nc*kth+c]
			if sym == escapeSym {
				if len(literals) < 4 {
					return nil, nil, errors.New("core: literal stream underrun")
				}
				comps[c][idx], literals = readLiteral(literals)
				continue
			}
			var pred int64
			if h.Temporal {
				pred = prevs[c][idx]
			} else {
				pred = predictLorenzo(comps[c], done, h.NX, h.NY, oi, oj, ok)
			}
			comps[c][idx] = quantizer.Reconstruct(huffman.Unzigzag(sym), pred, bound)
		}
		done[idx] = true
		kth++
	}
	return &h, comps, nil
}
