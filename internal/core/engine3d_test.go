package core

import (
	"testing"

	"repro/internal/cp"
	"repro/internal/field"
	"repro/internal/fixed"
)

// TestTwoPhasePair3D wires two vertically adjacent 3D blocks through the
// two-phase protocol by hand, covering the ghost-face plumbing directly.
func TestTwoPhasePair3D(t *testing.T) {
	nx, ny, nz := 12, 12, 16
	f := smooth3D(300, nx, ny, nz)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField3D(f, tr)
	if len(orig) == 0 {
		t.Fatal("no critical points in test volume")
	}

	half := nz / 2
	sub := func(z0, d int) (u, v, w []float32) {
		n := nx * ny * d
		u = make([]float32, n)
		v = make([]float32, n)
		w = make([]float32, n)
		copy(u, f.U[z0*nx*ny:(z0+d)*nx*ny])
		copy(v, f.V[z0*nx*ny:(z0+d)*nx*ny])
		copy(w, f.W[z0*nx*ny:(z0+d)*nx*ny])
		return u, v, w
	}
	u0, v0, w0 := sub(0, half)
	u1, v1, w1 := sub(half, nz-half)
	opts := Options{Tau: 0.05}

	lower, err := NewEncoder3D(Block3D{
		NX: nx, NY: ny, NZ: half, U: u0, V: v0, W: w0, Transform: tr, Opts: opts,
		GlobalNX: nx, GlobalNY: ny, GlobalNZ: nz,
		Neighbor: [6]bool{SideMaxZ: true}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	upper, err := NewEncoder3D(Block3D{
		NX: nx, NY: ny, NZ: nz - half, U: u1, V: v1, W: w1, Transform: tr, Opts: opts,
		GlobalZ0: half, GlobalNX: nx, GlobalNY: ny, GlobalNZ: nz,
		Neighbor: [6]bool{SideMinZ: true}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase-1 exchange (originals).
	gu, gv, gw := upper.BorderFace(SideMinZ)
	if err := lower.SetGhostFace(SideMaxZ, gu, gv, gw); err != nil {
		t.Fatal(err)
	}
	gu, gv, gw = lower.BorderFace(SideMaxZ)
	if err := upper.SetGhostFace(SideMinZ, gu, gv, gw); err != nil {
		t.Fatal(err)
	}
	lower.Prepare()
	upper.Prepare()
	lower.RunPhase1()
	upper.RunPhase1()

	// Phase-2 exchange: the upper block's min-z face is now decompressed.
	gu, gv, gw = upper.BorderFace(SideMinZ)
	if err := lower.SetGhostFace(SideMaxZ, gu, gv, gw); err != nil {
		t.Fatal(err)
	}
	lower.RunPhase2()
	upper.RunPhase2()

	// In-process reconstruction must agree with the decoded blobs.
	lu, lv, lw := lower.Decompressed()
	lblob, err := lower.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ublob, err := upper.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lf, err := Decompress3D(lblob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lu {
		if lu[i] != lf.U[i] || lv[i] != lf.V[i] || lw[i] != lf.W[i] {
			t.Fatal("in-process and decoded 3D reconstructions diverge")
		}
	}
	uf, err := Decompress3D(ublob)
	if err != nil {
		t.Fatal(err)
	}

	g := field.NewField3D(nx, ny, nz)
	copy(g.U, lf.U)
	copy(g.V, lf.V)
	copy(g.W, lf.W)
	copy(g.U[half*nx*ny:], uf.U)
	copy(g.V[half*nx*ny:], uf.V)
	copy(g.W[half*nx*ny:], uf.W)
	rep := cp.Compare(orig, cp.DetectField3D(g, tr))
	if !rep.Preserved() {
		t.Fatalf("two-phase 3D pair broke critical points: %v", rep)
	}
}

func TestGhostFaceErrors3D(t *testing.T) {
	f := smooth3D(301, 6, 6, 6)
	tr, _ := fixed.Fit(f.U, f.V, f.W)
	enc, err := NewEncoder3D(Block3D{
		NX: 6, NY: 6, NZ: 6, U: f.U, V: f.V, W: f.W, Transform: tr,
		Opts: Options{Tau: 0.05}, Neighbor: [6]bool{SideMaxX: true}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetGhostFace(SideMinX, nil, nil, nil); err == nil {
		t.Error("ghost on non-neighbor side must fail")
	}
	if err := enc.SetGhostFace(SideMaxX, make([]int64, 3), make([]int64, 3), make([]int64, 3)); err == nil {
		t.Error("wrong face size must fail")
	}
	if err := enc.SetGhostFace(99, nil, nil, nil); err == nil {
		t.Error("invalid side must fail")
	}
	u, v, w := enc.BorderFace(SideMaxX)
	if len(u) != 36 || len(v) != 36 || len(w) != 36 {
		t.Errorf("face sizes %d/%d/%d", len(u), len(v), len(w))
	}
}

func TestGhostLineErrors2D(t *testing.T) {
	f := smooth2D(302, 8, 8)
	tr, _ := fixed.Fit(f.U, f.V)
	enc, err := NewEncoder2D(Block2D{
		NX: 8, NY: 8, U: f.U, V: f.V, Transform: tr,
		Opts: Options{Tau: 0.05}, Neighbor: [4]bool{SideMinY: true}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetGhostLine(SideMaxY, nil, nil); err == nil {
		t.Error("ghost on non-neighbor side must fail")
	}
	if err := enc.SetGhostLine(SideMinY, make([]int64, 2), make([]int64, 2)); err == nil {
		t.Error("wrong line size must fail")
	}
	if err := enc.SetGhostLine(SideMinZ, nil, nil); err == nil {
		t.Error("3D side on 2D block must fail")
	}
	u, v := enc.BorderLine(SideMinX)
	if len(u) != 8 || len(v) != 8 {
		t.Errorf("line sizes %d/%d", len(u), len(v))
	}
}

func TestFinishTwice(t *testing.T) {
	f := smooth2D(303, 8, 8)
	tr, _ := fixed.Fit(f.U, f.V)
	enc, _ := NewEncoder2D(Block2D{NX: 8, NY: 8, U: f.U, V: f.V, Transform: tr, Opts: Options{Tau: 0.05}})
	enc.Run()
	if _, err := enc.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Finish(); err == nil {
		t.Error("double Finish must fail")
	}
}

func TestSubResolutionTauRejected(t *testing.T) {
	f := smooth2D(304, 8, 8)
	tr, _ := fixed.Fit(f.U, f.V)
	if _, err := CompressField2D(f, tr, Options{Tau: tr.Resolution() / 4}); err == nil {
		t.Error("sub-resolution Tau must be rejected (2D)")
	}
	g := smooth3D(305, 6, 6, 6)
	tr3, _ := fixed.Fit(g.U, g.V, g.W)
	if _, err := CompressField3D(g, tr3, Options{Tau: tr3.Resolution() / 4}); err == nil {
		t.Error("sub-resolution Tau must be rejected (3D)")
	}
}
