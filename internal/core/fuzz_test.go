package core

import (
	"testing"

	"repro/internal/fixed"
)

// Decoder robustness: arbitrary input bytes must produce an error, never a
// panic or a hang. Seeds include valid blobs and their mutations; `go test`
// runs the seed corpus, `go test -fuzz=FuzzDecompress2D` explores further.

func fuzzSeeds2D(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x53, 1, 2})
	fld := smooth2D(77, 12, 10)
	tr, _ := fixed.Fit(fld.U, fld.V)
	blob, err := CompressField2D(fld, tr, Options{Tau: 0.05})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	// Truncations and bit flips of a valid blob.
	f.Add(blob[:len(blob)/2])
	mut := append([]byte(nil), blob...)
	for i := 0; i < len(mut); i += 7 {
		mut[i] ^= 0x55
	}
	f.Add(mut)
}

func FuzzDecompress2D(f *testing.F) {
	fuzzSeeds2D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fld, err := Decompress2D(data)
		if err == nil && fld == nil {
			t.Fatal("nil field without error")
		}
		if fld != nil && len(fld.U) != fld.NX*fld.NY {
			t.Fatal("inconsistent field")
		}
	})
}

func fuzzSeeds3D(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x53, 1, 3})
	fld := smooth3D(78, 8, 8, 6)
	tr, _ := fixed.Fit(fld.U, fld.V, fld.W)
	blob, err := CompressField3D(fld, tr, Options{Tau: 0.05})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)-4])
	f.Add(blob[:len(blob)/2])
	mut := append([]byte(nil), blob...)
	for i := 0; i < len(mut); i += 7 {
		mut[i] ^= 0x55
	}
	f.Add(mut)
	// A temporal blob (decoding it without a previous frame must error,
	// not panic) and a two-phase blob with ghost faces on every side.
	prev := smooth3D(79, 8, 8, 6)
	enc, err := NewEncoder3D(Block3D{
		NX: 8, NY: 8, NZ: 6, U: fld.U, V: fld.V, W: fld.W,
		PrevU: prev.U, PrevV: prev.V, PrevW: prev.W,
		Transform: tr, Opts: Options{Tau: 0.05, Spec: ST2},
	})
	if err != nil {
		f.Fatal(err)
	}
	enc.Prepare()
	enc.Run()
	tblob, err := enc.Finish()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tblob)
	mut = append([]byte(nil), tblob...)
	for i := 3; i < len(mut); i += 11 {
		mut[i] ^= 0xA3
	}
	f.Add(mut)
}

func FuzzDecompress3D(f *testing.F) {
	fuzzSeeds3D(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fld, err := Decompress3D(data)
		if err == nil && fld == nil {
			t.Fatal("nil field without error")
		}
		if fld != nil && len(fld.U) != fld.NX*fld.NY*fld.NZ {
			t.Fatal("inconsistent field")
		}
	})
}

// FuzzRoundTrip2D asserts the end-to-end invariants on arbitrary small
// fields: decompression inverts compression within τ everywhere. The
// relaxation is disabled because it deliberately exceeds τ where the data
// provably carries no topology; without it the L∞ bound is strict.
func FuzzRoundTrip2D(f *testing.F) {
	f.Add(uint16(5), uint16(4), int64(1), 0.05)
	f.Add(uint16(9), uint16(3), int64(42), 0.001)
	f.Fuzz(func(t *testing.T, nxr, nyr uint16, seed int64, tau float64) {
		nx := int(nxr%14) + 2
		ny := int(nyr%14) + 2
		if tau <= 0 || tau > 10 || tau != tau {
			t.Skip()
		}
		fld := smooth2D(seed, nx, ny)
		tr, err := fixed.Fit(fld.U, fld.V)
		if err != nil {
			t.Skip()
		}
		if tau < tr.Resolution() {
			// Bounds below the fixed-point resolution are rejected by
			// the encoder (found by this fuzzer).
			if _, err := CompressField2D(fld, tr, Options{Tau: tau}); err == nil {
				t.Fatal("sub-resolution Tau must be rejected")
			}
			t.Skip()
		}
		blob, err := CompressField2D(fld, tr, Options{Tau: tau, DisableRelaxation: true})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress2D(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fld.U {
			du := float64(fld.U[i]) - float64(dec.U[i])
			dv := float64(fld.V[i]) - float64(dec.V[i])
			if du > tau || -du > tau || dv > tau || -dv > tau {
				t.Fatalf("error bound violated at %d: du=%v dv=%v tau=%v", i, du, dv, tau)
			}
		}
	})
}

// FuzzRoundTrip3D is the 3D counterpart of FuzzRoundTrip2D: the same
// within-τ invariant over the unified kernel's tetrahedral path.
func FuzzRoundTrip3D(f *testing.F) {
	f.Add(uint16(4), uint16(3), uint16(3), int64(1), 0.05)
	f.Add(uint16(5), uint16(2), uint16(4), int64(42), 0.001)
	f.Fuzz(func(t *testing.T, nxr, nyr, nzr uint16, seed int64, tau float64) {
		nx := int(nxr%6) + 2
		ny := int(nyr%6) + 2
		nz := int(nzr%6) + 2
		if tau <= 0 || tau > 10 || tau != tau {
			t.Skip()
		}
		fld := smooth3D(seed, nx, ny, nz)
		tr, err := fixed.Fit(fld.U, fld.V, fld.W)
		if err != nil {
			t.Skip()
		}
		if tau < tr.Resolution() {
			if _, err := CompressField3D(fld, tr, Options{Tau: tau}); err == nil {
				t.Fatal("sub-resolution Tau must be rejected")
			}
			t.Skip()
		}
		blob, err := CompressField3D(fld, tr, Options{Tau: tau, DisableRelaxation: true})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress3D(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fld.U {
			du := float64(fld.U[i]) - float64(dec.U[i])
			dv := float64(fld.V[i]) - float64(dec.V[i])
			dw := float64(fld.W[i]) - float64(dec.W[i])
			if du > tau || -du > tau || dv > tau || -dv > tau || dw > tau || -dw > tau {
				t.Fatalf("error bound violated at %d: du=%v dv=%v dw=%v tau=%v", i, du, dv, dw, tau)
			}
		}
	})
}
