package core

import (
	"fmt"

	"repro/internal/fixed"
)

// Block2D describes one (possibly distributed) 2D sub-domain to compress.
// The zero value of the positional fields describes a single-node run.
type Block2D struct {
	NX, NY int       // own grid dimensions
	U, V   []float32 // own component data, row-major; not modified
	// Transform is the float↔fixed mapping. It must be identical on every
	// rank of a distributed run (fit it on the global field).
	Transform fixed.Transform
	Opts      Options
	// Global placement, for SoS consistency across ranks. GlobalNX == 0
	// means the block is the whole domain.
	GlobalX0, GlobalY0 int
	GlobalNX, GlobalNY int
	// Neighbor marks which sides adjoin another rank (SideMinX..SideMaxY).
	Neighbor [4]bool
	// LosslessBorder selects the simple parallelization strategy: every
	// own vertex on a neighbor-facing side is stored losslessly.
	LosslessBorder bool
	// TwoPhase selects the ratio-oriented strategy: ghost layers must be
	// supplied on every neighbor side and compression runs in two phases.
	TwoPhase bool
	// PrevU/PrevV, when set, enable temporal prediction: each vertex is
	// predicted by the *decompressed* previous frame instead of the
	// spatial Lorenzo stencil — the natural mode for slowly evolving time
	// series (package archive). The decoder must be given the same
	// previous frame (Decompress2DWithPrev).
	PrevU, PrevV []float32
}

// Encoder2D compresses one 2D block: a thin adapter over the
// dimension-generic kernel. For single-node use call CompressField2D
// instead; the parallel strategies drive the encoder phase by phase.
type Encoder2D struct {
	k *kernel
}

// NewEncoder2D validates the block and allocates the extended arrays.
// Ghost values (for two-phase blocks) must be supplied with SetGhostLine
// before Prepare.
func NewEncoder2D(blk Block2D) (*Encoder2D, error) {
	spec := blockSpec{
		ndim: 2, nc: 2,
		nx: blk.NX, ny: blk.NY, nz: 1,
		comps:     [maxComps][]float32{blk.U, blk.V},
		prev:      [maxComps][]float32{blk.PrevU, blk.PrevV},
		transform: blk.Transform,
		opts:      blk.Opts,
		gx0:       blk.GlobalX0, gy0: blk.GlobalY0,
		gnx: blk.GlobalNX, gny: blk.GlobalNY,
		losslessBord: blk.LosslessBorder,
		twoPhase:     blk.TwoPhase,
	}
	copy(spec.neighbor[:], blk.Neighbor[:])
	k, err := newKernel(spec)
	if err != nil {
		return nil, err
	}
	return &Encoder2D{k: k}, nil
}

// SetGhostLine supplies the fixed-point ghost values for one side
// (SideMinX..SideMaxY). Column ghosts have length NY, row ghosts length
// NX. For two-phase blocks the min/max sides carry the neighbors' border
// values: originals before phase 1, decompressed values before phase 2.
func (e *Encoder2D) SetGhostLine(side int, u, v []int64) error {
	if side < 0 || side > SideMaxY {
		return fmt.Errorf("core: invalid 2D side %d", side)
	}
	return e.k.setGhostPlane(side, [][]int64{u, v})
}

// SetGhostPlane is the dimension-generic form of SetGhostLine (one slice
// per component), used by the distributed drivers.
func (e *Encoder2D) SetGhostPlane(side int, vals [][]int64) error {
	return e.k.setGhostPlane(side, vals)
}

// BorderLine returns the current (decompressed once processed) fixed-point
// values of one own border line, for the phase exchanges.
func (e *Encoder2D) BorderLine(side int) (u, v []int64) {
	p := e.k.borderPlane(side)
	if p == nil {
		return nil, nil
	}
	return p[0], p[1]
}

// BorderPlane is the dimension-generic form of BorderLine (one slice per
// component), used by the distributed drivers.
func (e *Encoder2D) BorderPlane(side int) [][]int64 {
	return e.k.borderPlane(side)
}

// Prepare precomputes the critical point map (Algorithm 2 lines 1–3).
// For two-phase blocks all ghost lines must have been set (with the
// neighbors' original values).
func (e *Encoder2D) Prepare() { e.k.prepare() }

// Run compresses every vertex in raster order (single-node and
// lossless-border blocks). On a two-phase block it runs both phases
// back-to-back — callers that exchange ghosts between the phases must
// drive RunPhase1/RunPhase2 themselves, but the visit order stays
// consistent with the decoder either way.
func (e *Encoder2D) Run() { e.k.run() }

// RunPhase1 compresses every vertex except those on neighbor-facing max
// planes (ratio-oriented strategy, first phase).
func (e *Encoder2D) RunPhase1() { e.k.runPhase1() }

// RunPhase2 compresses the remaining max-plane vertices. Ghost lines on
// the max sides should have been refreshed with the neighbors'
// decompressed borders.
func (e *Encoder2D) RunPhase2() { e.k.runPhase2() }

// Finish packs the compressed block.
func (e *Encoder2D) Finish() ([]byte, error) { return e.k.finish() }

// Decompressed returns the reconstructed own block as float32 components
// (available after all phases have run). Useful for in-process
// verification without a decode round trip.
func (e *Encoder2D) Decompressed() (u, v []float32) {
	d := e.k.decompressed()
	return d[0], d[1]
}

// Stats reports what the encoder did so far.
func (e *Encoder2D) Stats() Stats { return e.k.stats }

// Close releases the encoder's pooled working buffers. Call it after the
// last use of the encoder (Finish, Decompressed, BorderLine); the
// returned blob and any copies remain valid. Close is optional — an
// unclosed encoder is simply garbage collected — but long sweeps that
// skip it forfeit the buffer reuse. Safe to call more than once.
func (e *Encoder2D) Close() { e.k.close() }
