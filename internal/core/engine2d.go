package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cp"
	"repro/internal/derive"
	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/quantizer"
)

// Ghost side indices for Block2D.Neighbor and the ghost setters.
const (
	SideMinX = 0
	SideMaxX = 1
	SideMinY = 2
	SideMaxY = 3
	SideMinZ = 4
	SideMaxZ = 5
)

// escapeSym is the quantization-code symbol marking a literal escape. It
// is outside the zigzag range of valid codes (|code| < Radius).
const escapeSym = uint32(2 * quantizer.Radius)

// Block2D describes one (possibly distributed) sub-domain to compress.
// The zero value of the positional fields describes a single-node run.
type Block2D struct {
	NX, NY int       // own grid dimensions
	U, V   []float32 // own component data, row-major; not modified
	// Transform is the float↔fixed mapping. It must be identical on every
	// rank of a distributed run (fit it on the global field).
	Transform fixed.Transform
	Opts      Options
	// Global placement, for SoS consistency across ranks. GlobalNX == 0
	// means the block is the whole domain.
	GlobalX0, GlobalY0 int
	GlobalNX, GlobalNY int
	// Neighbor marks which sides adjoin another rank (SideMinX..SideMaxY).
	Neighbor [4]bool
	// LosslessBorder selects the simple parallelization strategy: every
	// own vertex on a neighbor-facing side is stored losslessly.
	LosslessBorder bool
	// TwoPhase selects the ratio-oriented strategy: ghost layers must be
	// supplied on every neighbor side and compression runs in two phases.
	TwoPhase bool
	// PrevU/PrevV, when set, enable temporal prediction: each vertex is
	// predicted by the *decompressed* previous frame instead of the
	// spatial Lorenzo stencil — the natural mode for slowly evolving time
	// series (package archive). The decoder must be given the same
	// previous frame (Decompress2DWithPrev).
	PrevU, PrevV []float32
}

// Encoder2D compresses one 2D block. For single-node use call
// CompressField2D instead; the parallel strategies drive the encoder
// phase by phase.
type Encoder2D struct {
	blk          Block2D
	tau          int64
	extNX, extNY int
	offX, offY   int
	u, v         []int64 // extended working arrays
	ownU, ownV   []int64 // own-layout reconstructed values (prediction)
	prevU, prevV []int64 // previous-frame fixed values (temporal prediction)
	valid        []bool  // extended vertex validity
	ownDone      []bool  // own-indexed processed mask (prediction guard)
	mesh         field.Mesh2D
	det          *cp.Detector2D
	cellValid    []bool
	cpCell       []bool
	origType     map[int]cp.Type
	cpAdj        []bool // own-indexed
	expSyms      []uint32
	codeSyms     []uint32
	literals     []byte
	cellBuf      []int
	stats        Stats
	tel          engineTel
	prepared     bool
	finished     bool
}

// NewEncoder2D validates the block and allocates the extended arrays.
// Ghost values (for two-phase blocks) must be supplied with SetGhostLine
// before Prepare.
func NewEncoder2D(blk Block2D) (*Encoder2D, error) {
	if err := blk.Opts.Validate(); err != nil {
		return nil, err
	}
	if blk.NX < 2 || blk.NY < 2 {
		return nil, errors.New("core: block must be at least 2x2")
	}
	if len(blk.U) != blk.NX*blk.NY || len(blk.V) != blk.NX*blk.NY {
		return nil, errors.New("core: component length mismatch")
	}
	if blk.GlobalNX == 0 {
		blk.GlobalNX, blk.GlobalNY = blk.NX, blk.NY
	}
	if blk.Opts.Tau < blk.Transform.Resolution() {
		return nil, fmt.Errorf("core: Tau %g is below the fixed-point resolution %g of this field; use lossless storage instead",
			blk.Opts.Tau, blk.Transform.Resolution())
	}
	e := &Encoder2D{blk: blk, tau: blk.Transform.Bound(blk.Opts.Tau)}
	e.offX, e.offY = 0, 0
	e.extNX, e.extNY = blk.NX, blk.NY
	if blk.TwoPhase {
		if blk.Neighbor[SideMinX] {
			e.offX = 1
			e.extNX++
		}
		if blk.Neighbor[SideMaxX] {
			e.extNX++
		}
		if blk.Neighbor[SideMinY] {
			e.offY = 1
			e.extNY++
		}
		if blk.Neighbor[SideMaxY] {
			e.extNY++
		}
	}
	n := e.extNX * e.extNY
	e.u = make([]int64, n)
	e.v = make([]int64, n)
	e.valid = make([]bool, n)
	e.ownU = make([]int64, blk.NX*blk.NY)
	e.ownV = make([]int64, blk.NX*blk.NY)
	e.ownDone = make([]bool, blk.NX*blk.NY)
	if blk.PrevU != nil || blk.PrevV != nil {
		if len(blk.PrevU) != blk.NX*blk.NY || len(blk.PrevV) != blk.NX*blk.NY {
			return nil, errors.New("core: previous-frame length mismatch")
		}
		e.prevU = make([]int64, blk.NX*blk.NY)
		e.prevV = make([]int64, blk.NX*blk.NY)
		blk.Transform.ToFixed(blk.PrevU, e.prevU)
		blk.Transform.ToFixed(blk.PrevV, e.prevV)
	}
	e.mesh = field.Mesh2D{NX: e.extNX, NY: e.extNY}
	e.tel = newEngineTel(blk.Opts, "2d")
	// Fill own region.
	convert := e.tel.stage("fixed-convert")
	row := make([]int64, blk.NX)
	for j := 0; j < blk.NY; j++ {
		blk.Transform.ToFixed(blk.U[j*blk.NX:(j+1)*blk.NX], row)
		copy(e.u[(j+e.offY)*e.extNX+e.offX:], row)
		blk.Transform.ToFixed(blk.V[j*blk.NX:(j+1)*blk.NX], row)
		copy(e.v[(j+e.offY)*e.extNX+e.offX:], row)
		for i := 0; i < blk.NX; i++ {
			e.valid[(j+e.offY)*e.extNX+e.offX+i] = true
		}
	}
	convert.End()
	return e, nil
}

// SetGhostLine supplies the fixed-point ghost values for one side
// (SideMinX..SideMaxY). Column ghosts have length NY, row ghosts length
// NX. For two-phase blocks the min/max sides carry the neighbors' border
// values: originals before phase 1, decompressed values before phase 2.
func (e *Encoder2D) SetGhostLine(side int, u, v []int64) error {
	if side < 0 || side > SideMaxY {
		return fmt.Errorf("core: invalid 2D side %d", side)
	}
	if !e.blk.TwoPhase || !e.blk.Neighbor[side] {
		return fmt.Errorf("core: no ghost layer on side %d", side)
	}
	set := func(i, j int, uu, vv int64) {
		idx := j*e.extNX + i
		e.u[idx], e.v[idx] = uu, vv
		e.valid[idx] = true
	}
	switch side {
	case SideMinX, SideMaxX:
		if len(u) != e.blk.NY || len(v) != e.blk.NY {
			return errors.New("core: ghost column length mismatch")
		}
		x := 0
		if side == SideMaxX {
			x = e.extNX - 1
		}
		for j := 0; j < e.blk.NY; j++ {
			set(x, j+e.offY, u[j], v[j])
		}
	case SideMinY, SideMaxY:
		if len(u) != e.blk.NX || len(v) != e.blk.NX {
			return errors.New("core: ghost row length mismatch")
		}
		y := 0
		if side == SideMaxY {
			y = e.extNY - 1
		}
		for i := 0; i < e.blk.NX; i++ {
			set(i+e.offX, y, u[i], v[i])
		}
	default:
		return fmt.Errorf("core: invalid 2D side %d", side)
	}
	return nil
}

// BorderLine returns the current (decompressed once processed) fixed-point
// values of one own border line, for the phase exchanges.
func (e *Encoder2D) BorderLine(side int) (u, v []int64) {
	switch side {
	case SideMinX, SideMaxX:
		x := e.offX
		if side == SideMaxX {
			x = e.offX + e.blk.NX - 1
		}
		u = make([]int64, e.blk.NY)
		v = make([]int64, e.blk.NY)
		for j := 0; j < e.blk.NY; j++ {
			idx := (j+e.offY)*e.extNX + x
			u[j], v[j] = e.u[idx], e.v[idx]
		}
	case SideMinY, SideMaxY:
		y := e.offY
		if side == SideMaxY {
			y = e.offY + e.blk.NY - 1
		}
		u = make([]int64, e.blk.NX)
		v = make([]int64, e.blk.NX)
		for i := 0; i < e.blk.NX; i++ {
			idx := y*e.extNX + i + e.offX
			u[i], v[i] = e.u[idx], e.v[idx]
		}
	}
	return u, v
}

// Prepare precomputes the critical point map (Algorithm 2 lines 1–3).
// For two-phase blocks all ghost lines must have been set (with the
// neighbors' original values).
func (e *Encoder2D) Prepare() {
	precompute := e.tel.stage("cp-precompute")
	defer precompute.End()
	gx0 := e.blk.GlobalX0 - e.offX
	gy0 := e.blk.GlobalY0 - e.offY
	gnx := e.blk.GlobalNX
	e.det = &cp.Detector2D{
		Mesh: e.mesh, U: e.u, V: e.v,
		GlobalID: func(v int) int {
			i, j := v%e.extNX, v/e.extNX
			return (gy0+j)*gnx + (gx0 + i)
		},
	}
	nc := e.mesh.NumCells()
	e.cellValid = make([]bool, nc)
	e.cpCell = make([]bool, nc)
	for c := 0; c < nc; c++ {
		vs := e.mesh.CellVertices(c)
		if e.valid[vs[0]] && e.valid[vs[1]] && e.valid[vs[2]] {
			e.cellValid[c] = true
			if !allZero2(e.u, e.v, vs[:]) {
				e.cpCell[c] = e.det.CellContains(c)
			}
		}
	}
	if e.blk.Opts.Spec == ST4 {
		e.origType = make(map[int]cp.Type)
		for c := 0; c < nc; c++ {
			if e.cpCell[c] {
				e.origType[c] = e.det.CellType(c)
			}
		}
	}
	e.cpAdj = make([]bool, e.blk.NX*e.blk.NY)
	for oj := 0; oj < e.blk.NY; oj++ {
		for oi := 0; oi < e.blk.NX; oi++ {
			vid := (oj+e.offY)*e.extNX + (oi + e.offX)
			e.cellBuf = e.mesh.VertexCells(vid, e.cellBuf[:0])
			for _, c := range e.cellBuf {
				if e.cellValid[c] && e.cpCell[c] {
					e.cpAdj[oj*e.blk.NX+oi] = true
					break
				}
			}
		}
	}
	e.prepared = true
}

// allZero2 reports whether every vector of the cell is exactly zero — a
// fully degenerate cell (e.g. masked land areas) that by convention
// carries no critical point.
func allZero2(u, v []int64, vs []int) bool {
	for _, vi := range vs {
		if u[vi] != 0 || v[vi] != 0 {
			return false
		}
	}
	return true
}

// Run compresses every vertex in raster order (single-node and
// lossless-border blocks). On a two-phase block it runs both phases
// back-to-back — callers that exchange ghosts between the phases must
// drive RunPhase1/RunPhase2 themselves, but the visit order stays
// consistent with the decoder either way.
func (e *Encoder2D) Run() {
	if !e.prepared {
		e.Prepare()
	}
	if e.blk.TwoPhase {
		e.RunPhase1()
		e.RunPhase2()
		return
	}
	process := e.tel.stage("process")
	for oj := 0; oj < e.blk.NY; oj++ {
		for oi := 0; oi < e.blk.NX; oi++ {
			e.processVertex(oi, oj)
		}
	}
	process.End()
}

// RunPhase1 compresses every vertex except those on neighbor-facing max
// planes (ratio-oriented strategy, first phase).
func (e *Encoder2D) RunPhase1() {
	if !e.prepared {
		e.Prepare()
	}
	process := e.tel.stage("process-phase1")
	for oj := 0; oj < e.blk.NY; oj++ {
		for oi := 0; oi < e.blk.NX; oi++ {
			if e.phase2Vertex(oi, oj) {
				continue
			}
			e.processVertex(oi, oj)
		}
	}
	process.End()
}

// RunPhase2 compresses the remaining max-plane vertices. Ghost lines on
// the max sides should have been refreshed with the neighbors'
// decompressed borders.
func (e *Encoder2D) RunPhase2() {
	process := e.tel.stage("process-phase2")
	for oj := 0; oj < e.blk.NY; oj++ {
		for oi := 0; oi < e.blk.NX; oi++ {
			if e.phase2Vertex(oi, oj) {
				e.processVertex(oi, oj)
			}
		}
	}
	process.End()
}

func (e *Encoder2D) phase2Vertex(oi, oj int) bool {
	return (e.blk.Neighbor[SideMaxX] && oi == e.blk.NX-1) ||
		(e.blk.Neighbor[SideMaxY] && oj == e.blk.NY-1)
}

// forcedLossless reports whether the strategy pins this vertex to zero
// error: neighbor-facing borders in LosslessBorder mode, and vertices on
// two or more neighbor-facing planes (block corners, whose derivation
// would need diagonal ghosts) in two-phase mode.
func (e *Encoder2D) forcedLossless(oi, oj int) bool {
	planes := 0
	if e.blk.Neighbor[SideMinX] && oi == 0 {
		planes++
	}
	if e.blk.Neighbor[SideMaxX] && oi == e.blk.NX-1 {
		planes++
	}
	if e.blk.Neighbor[SideMinY] && oj == 0 {
		planes++
	}
	if e.blk.Neighbor[SideMaxY] && oj == e.blk.NY-1 {
		planes++
	}
	if e.blk.LosslessBorder {
		return planes >= 1
	}
	if e.blk.TwoPhase {
		return planes >= 2
	}
	return false
}

func (e *Encoder2D) processVertex(oi, oj int) {
	vid := (oj+e.offY)*e.extNX + (oi + e.offX)
	spec := e.blk.Opts.Spec
	cpA := e.cpAdj[oj*e.blk.NX+oi]

	var sym uint8
	var snapped int64
	switch {
	case e.forcedLossless(oi, oj):
		sym, snapped = quantizer.LosslessSym, 0
	case spec == NoSpec:
		xi := int64(0)
		if !cpA {
			var relaxed bool
			xi, relaxed = e.deriveBound(vid)
			if relaxed {
				e.stats.Relaxed++
				e.tel.relaxed.Inc()
			}
		}
		sym, snapped = quantizer.BoundSym(xi, e.tau)
	case spec == ST1:
		sym, snapped = e.speculateST1(oi, oj, vid, cpA)
	case spec == ST2 || spec == ST3:
		sym, snapped = e.speculateFN(oi, oj, vid, cpA)
	default: // ST4
		sym, snapped = e.speculateFull(oi, oj, vid)
	}
	codes, recons, esc := e.tryQuantize(oi, oj, vid, snapped)
	e.commit(vid, oi, oj, sym, codes, recons, esc)
}

// deriveBound is Algorithm 2 lines 5–17: the minimum over adjacent cells
// of min(Ψ, τ′), with the sign-uniformity relaxation.
func (e *Encoder2D) deriveBound(vid int) (xi int64, relaxed bool) {
	if e.tel.deriveNS != nil {
		defer e.tel.deriveNS.AddSince(time.Now())
	}
	e.cellBuf = e.mesh.VertexCells(vid, e.cellBuf[:0])
	xi = e.tau
	for _, c := range e.cellBuf {
		if !e.cellValid[c] {
			continue
		}
		if e.cpCell[c] {
			return 0, false
		}
		vs := e.mesh.CellVertices(c)
		a, b := otherTwo(vs, vid)
		var cb int64
		if e.blk.Opts.OrientationOnly {
			cb = derive.Psi2DOrientationOnly(e.u, e.v, a, b, vid)
		} else {
			cb = derive.Psi2D(e.u, e.v, a, b, vid)
		}
		if cb > e.tau {
			cb = e.tau
		}
		// Relaxation: a component with uniform strict sign over the cell
		// keeps the cell critical-point-free as long as the sign at this
		// vertex survives.
		if !e.blk.Opts.DisableRelaxation {
			for _, z := range [2][]int64{e.u, e.v} {
				s := sgn(z[vs[0]])
				if s != 0 && sgn(z[vs[1]]) == s && sgn(z[vs[2]]) == s {
					if r := derive.SignPreservingBound(z[vid]); r > cb {
						cb = r
						relaxed = true
					}
				}
			}
		}
		if cb < xi {
			xi = cb
		}
	}
	return xi, relaxed
}

func otherTwo(vs [3]int, vid int) (a, b int) {
	switch vid {
	case vs[0]:
		return vs[1], vs[2]
	case vs[1]:
		return vs[0], vs[2]
	default:
		return vs[0], vs[1]
	}
}

// speculateST1 relaxes the derived bound and accepts when the realized
// quantization error still meets the derived bound.
func (e *Encoder2D) speculateST1(oi, oj, vid int, cpA bool) (uint8, int64) {
	if cpA {
		return quantizer.LosslessSym, 0
	}
	xi, _ := e.deriveBound(vid)
	if xi <= 0 {
		return quantizer.LosslessSym, 0
	}
	nl := e.blk.Opts.Spec.retries()
	// Relax the bound, capped at max(τ′, ξ): ST1 recovers the precision
	// lost when the derived bound is floor-snapped onto the exponent
	// grid, and never discards a relaxation-derived ξ above τ′; pushing
	// past both is left to the FN-level targets.
	try := xi << uint(nl)
	limit := e.tau
	if xi > limit {
		limit = xi
	}
	if try > limit {
		try = limit
	}
	fails := 0
	for {
		e.stats.SpecTrials++
		e.tel.specTrials.Inc()
		sym, snapped := quantizer.BoundSym(try, e.tau)
		_, recons, _ := e.tryQuantize(oi, oj, vid, snapped)
		if absDiff(recons[0], e.u[vid]) <= xi && absDiff(recons[1], e.v[vid]) <= xi {
			return sym, snapped
		}
		e.stats.SpecFails++
		e.tel.specFails.Inc()
		fails++
		if fails > nl {
			return e.specCutoff()
		}
		try >>= 1
		if try <= 0 {
			return e.specCutoff()
		}
	}
}

// speculateFN (ST2/ST3) skips derivation: it compresses with a relaxed
// bound and verifies that no adjacent cell gains a critical point.
func (e *Encoder2D) speculateFN(oi, oj, vid int, cpA bool) (uint8, int64) {
	if cpA {
		return quantizer.LosslessSym, 0
	}
	return e.speculateVerify(oi, oj, vid, func(c int) bool {
		return !e.det.CellContains(c)
	})
}

// speculateFull (ST4) verifies detection result and critical point type on
// every adjacent cell, including cells that contain critical points.
func (e *Encoder2D) speculateFull(oi, oj, vid int) (uint8, int64) {
	return e.speculateVerify(oi, oj, vid, func(c int) bool {
		if e.det.CellContains(c) != e.cpCell[c] {
			return false
		}
		return !e.cpCell[c] || e.det.CellType(c) == e.origType[c]
	})
}

// speculateVerify is the trial loop of Fig. 2: relax, compress, verify the
// target on the adjacent cells with the candidate reconstruction in
// place, restrict on failure, and hard cut-off to lossless after n_l
// failures.
func (e *Encoder2D) speculateVerify(oi, oj, vid int, check func(c int) bool) (uint8, int64) {
	nl := e.blk.Opts.Spec.retries()
	try := e.tau << uint(nl)
	fails := 0
	origU, origV := e.u[vid], e.v[vid]
	for {
		e.stats.SpecTrials++
		e.tel.specTrials.Inc()
		sym, snapped := quantizer.BoundSym(try, e.tau)
		_, recons, _ := e.tryQuantize(oi, oj, vid, snapped)
		e.u[vid], e.v[vid] = recons[0], recons[1]
		ok := true
		e.cellBuf = e.mesh.VertexCells(vid, e.cellBuf[:0])
		for _, c := range e.cellBuf {
			if e.cellValid[c] && !check(c) {
				ok = false
				break
			}
		}
		e.u[vid], e.v[vid] = origU, origV
		if ok {
			return sym, snapped
		}
		e.stats.SpecFails++
		e.tel.specFails.Inc()
		fails++
		if fails > nl {
			return e.specCutoff()
		}
		try >>= 1
		if try <= 0 {
			return e.specCutoff()
		}
	}
}

// specCutoff records the hard cut-off to lossless storage after
// speculation exhausts its retry budget (n_l failures or a trial bound
// shrunk to zero).
func (e *Encoder2D) specCutoff() (uint8, int64) {
	e.stats.SpecCutoffs++
	e.tel.specCutoffs.Inc()
	return quantizer.LosslessSym, 0
}

// tryQuantize quantizes both components of the vertex against the snapped
// bound without committing anything.
func (e *Encoder2D) tryQuantize(oi, oj, vid int, snapped int64) (codes, recons [2]int64, esc [2]bool) {
	for comp, z := range [2][]int64{e.u, e.v} {
		var pred int64
		if e.prevU != nil {
			pred = e.prevComp(comp)[oj*e.blk.NX+oi]
		} else {
			pred = predictOwn2D(e.ownComp(comp), e.ownDone, e.blk.NX, oi, oj)
		}
		code, recon, ok := quantizer.Quantize(z[vid], pred, snapped)
		if !ok {
			esc[comp] = true
			recons[comp] = z[vid]
		} else {
			codes[comp] = code
			recons[comp] = recon
		}
	}
	return codes, recons, esc
}

func (e *Encoder2D) ownComp(comp int) []int64 {
	if comp == 0 {
		return e.ownU
	}
	return e.ownV
}

func (e *Encoder2D) prevComp(comp int) []int64 {
	if comp == 0 {
		return e.prevU
	}
	return e.prevV
}

// predictOwn2D is the Lorenzo predictor restricted to own,
// already-processed neighbors. The decompressor calls the exact same
// function, which guarantees bit-identical predictions even in the
// two-phase visit order.
func predictOwn2D(z []int64, done []bool, nx, oi, oj int) int64 {
	idx := oj*nx + oi
	w := oi > 0 && done[idx-1]
	s := oj > 0 && done[idx-nx]
	sw := oi > 0 && oj > 0 && done[idx-nx-1]
	switch {
	case w && s && sw:
		return z[idx-1] + z[idx-nx] - z[idx-nx-1]
	case w:
		return z[idx-1]
	case s:
		return z[idx-nx]
	default:
		return 0
	}
}

// commit emits the streams for the vertex and overwrites the working
// arrays with the decompressed values (Algorithm 2 lines 18–22).
func (e *Encoder2D) commit(vid, oi, oj int, sym uint8, codes, recons [2]int64, esc [2]bool) {
	e.stats.Vertices++
	e.tel.vertices.Inc()
	e.tel.boundExp.Observe(int64(sym))
	if sym == quantizer.LosslessSym {
		e.stats.Lossless++
		e.tel.lossless.Inc()
	}
	for _, esc1 := range esc {
		if esc1 {
			e.stats.Literals++
			e.tel.literals.Inc()
		}
	}
	e.expSyms = append(e.expSyms, uint32(sym))
	vals := [2]int64{e.u[vid], e.v[vid]}
	for comp := 0; comp < 2; comp++ {
		if esc[comp] {
			e.codeSyms = append(e.codeSyms, escapeSym)
			e.literals = appendLiteral(e.literals, vals[comp])
		} else {
			e.codeSyms = append(e.codeSyms, huffman.Zigzag(codes[comp]))
		}
	}
	e.u[vid], e.v[vid] = recons[0], recons[1]
	own := oj*e.blk.NX + oi
	e.ownU[own], e.ownV[own] = recons[0], recons[1]
	e.ownDone[own] = true
}

// Finish packs the compressed block.
func (e *Encoder2D) Finish() ([]byte, error) {
	if e.finished {
		return nil, errors.New("core: Finish called twice")
	}
	e.finished = true
	h := header{
		NDim:  2,
		NX:    e.blk.NX,
		NY:    e.blk.NY,
		Shift: e.blk.Transform.Shift,
		Tau:   e.tau,
		Spec:  e.blk.Opts.Spec,
		Order: orderRaster,
	}
	if e.blk.TwoPhase {
		h.Order = orderTwoPhase
	}
	for i := 0; i < 4; i++ {
		h.HasGhost[i] = e.blk.Neighbor[i]
	}
	h.Border = e.blk.LosslessBorder
	h.Temporal = e.prevU != nil
	entropy := e.tel.stage("entropy-code")
	blob, err := encoder.Pack(h.marshal(), huffman.Compress(e.expSyms), huffman.Compress(e.codeSyms), e.literals)
	entropy.End()
	e.tel.finish()
	return blob, err
}

// Decompressed returns the reconstructed own block as float32 components
// (available after all phases have run). Useful for in-process
// verification without a decode round trip.
func (e *Encoder2D) Decompressed() (u, v []float32) {
	n := e.blk.NX * e.blk.NY
	u = make([]float32, n)
	v = make([]float32, n)
	e.blk.Transform.ToFloat(e.ownU, u)
	e.blk.Transform.ToFloat(e.ownV, v)
	return u, v
}

// Stats reports what the encoder did so far.
func (e *Encoder2D) Stats() Stats { return e.stats }

func appendLiteral(dst []byte, v int64) []byte {
	u := uint32(int32(v))
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

func readLiteral(src []byte) (int64, []byte) {
	u := uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
	return int64(int32(u)), src[4:]
}

func sgn(v int64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
