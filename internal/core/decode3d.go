package core

import (
	"errors"

	"repro/internal/field"
	"repro/internal/fixed"
)

// Decompress3D reconstructs a 3D block compressed with Encoder3D.
func Decompress3D(blob []byte) (*field.Field3D, error) {
	return Decompress3DWithPrev(blob, nil)
}

// Decompress3DWithPrev reconstructs a temporally predicted 3D block
// against the previous decompressed frame.
func Decompress3DWithPrev(blob []byte, prev *field.Field3D) (*field.Field3D, error) {
	h, comps, err := decodeFixed(blob, 3, func(h *header) ([][]int64, error) {
		if prev == nil || prev.NX != h.NX || prev.NY != h.NY || prev.NZ != h.NZ {
			return nil, errors.New("core: temporally predicted block needs the matching previous frame (Decompress3DWithPrev)")
		}
		n := h.NX * h.NY * h.NZ
		if len(prev.U) != n || len(prev.V) != n || len(prev.W) != n {
			return nil, errors.New("core: previous frame component length mismatch")
		}
		return prevFixed(h, [][]float32{prev.U, prev.V, prev.W}), nil
	})
	if err != nil {
		return nil, err
	}
	f := field.NewField3D(h.NX, h.NY, h.NZ)
	tr := fixed.FromShift(h.Shift)
	tr.ToFloat(comps[0], f.U)
	tr.ToFloat(comps[1], f.V)
	tr.ToFloat(comps[2], f.W)
	return f, nil
}
