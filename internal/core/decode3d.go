package core

import (
	"errors"
	"fmt"

	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/quantizer"
)

// visitOrder3D yields the own-coordinate vertices of a 3D block in
// compression order.
func visitOrder3D(nx, ny, nz int, mode orderMode, hasMaxX, hasMaxY, hasMaxZ bool) [][3]int {
	order := make([][3]int, 0, nx*ny*nz)
	phase2 := func(i, j, k int) bool {
		return (hasMaxX && i == nx-1) || (hasMaxY && j == ny-1) || (hasMaxZ && k == nz-1)
	}
	if mode != orderTwoPhase {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					order = append(order, [3]int{i, j, k})
				}
			}
		}
		return order
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if !phase2(i, j, k) {
					order = append(order, [3]int{i, j, k})
				}
			}
		}
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if phase2(i, j, k) {
					order = append(order, [3]int{i, j, k})
				}
			}
		}
	}
	return order
}

// Decompress3D reconstructs a 3D block compressed with Encoder3D.
func Decompress3D(blob []byte) (*field.Field3D, error) {
	return Decompress3DWithPrev(blob, nil)
}

// Decompress3DWithPrev reconstructs a temporally predicted 3D block
// against the previous decompressed frame.
func Decompress3DWithPrev(blob []byte, prev *field.Field3D) (*field.Field3D, error) {
	h, u, v, w, err := decode3DFixed(blob, prev)
	if err != nil {
		return nil, err
	}
	f := field.NewField3D(h.NX, h.NY, h.NZ)
	tr := fixed.FromShift(h.Shift)
	tr.ToFloat(u, f.U)
	tr.ToFloat(v, f.V)
	tr.ToFloat(w, f.W)
	return f, nil
}

func decode3DFixed(blob []byte, prev *field.Field3D) (*header, []int64, []int64, []int64, error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if len(sections) != 4 {
		return nil, nil, nil, nil, errors.New("core: wrong section count")
	}
	var h header
	if err := h.unmarshal(sections[0]); err != nil {
		return nil, nil, nil, nil, err
	}
	if h.NDim != 3 {
		return nil, nil, nil, nil, fmt.Errorf("core: expected 3D block, got %dD", h.NDim)
	}
	expSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: bound stream: %w", err)
	}
	codeSyms, err := huffman.Decompress(sections[2])
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: code stream: %w", err)
	}
	literals := sections[3]
	n := h.NX * h.NY * h.NZ
	if len(expSyms) != n || len(codeSyms) != 3*n {
		return nil, nil, nil, nil, errors.New("core: stream length mismatch")
	}
	var prevs [3][]int64
	if h.Temporal {
		if prev == nil || prev.NX != h.NX || prev.NY != h.NY || prev.NZ != h.NZ {
			return nil, nil, nil, nil, errors.New("core: temporally predicted block needs the matching previous frame (Decompress3DWithPrev)")
		}
		tr := fixed.FromShift(h.Shift)
		for c, src := range [3][]float32{prev.U, prev.V, prev.W} {
			prevs[c] = make([]int64, n)
			tr.ToFixed(src, prevs[c])
		}
	}
	u := make([]int64, n)
	v := make([]int64, n)
	w := make([]int64, n)
	done := make([]bool, n)
	order := visitOrder3D(h.NX, h.NY, h.NZ, h.Order,
		h.HasGhost[SideMaxX], h.HasGhost[SideMaxY], h.HasGhost[SideMaxZ])
	kth := 0
	for _, ov := range order {
		oi, oj, ok := ov[0], ov[1], ov[2]
		idx := (ok*h.NY+oj)*h.NX + oi
		bound := quantizer.BoundFromSym(uint8(expSyms[kth]), h.Tau)
		for comp, z := range [3][]int64{u, v, w} {
			sym := codeSyms[3*kth+comp]
			if sym == escapeSym {
				if len(literals) < 4 {
					return nil, nil, nil, nil, errors.New("core: literal stream underrun")
				}
				z[idx], literals = readLiteral(literals)
				continue
			}
			var pred int64
			if h.Temporal {
				pred = prevs[comp][idx]
			} else {
				pred = predictOwn3D(z, done, h.NX, h.NY, oi, oj, ok)
			}
			z[idx] = quantizer.Reconstruct(huffman.Unzigzag(sym), pred, bound)
		}
		done[idx] = true
		kth++
	}
	return &h, u, v, w, nil
}

// PeekHeader reports the dimensionality and sizes of a compressed block
// without decoding the payload.
func PeekHeader(blob []byte) (ndim, nx, ny, nz int, err error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(sections) < 1 {
		return 0, 0, 0, 0, errors.New("core: empty container")
	}
	var h header
	if err := h.unmarshal(sections[0]); err != nil {
		return 0, 0, 0, 0, err
	}
	return h.NDim, h.NX, h.NY, h.NZ, nil
}
