package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cp"
	"repro/internal/field"
	"repro/internal/fixed"
)

// smooth2D builds a smooth synthetic field with several critical points.
func smooth2D(seed int64, nx, ny int) *field.Field2D {
	rng := rand.New(rand.NewSource(seed))
	type mode struct{ ax, ay, px, py, amp float64 }
	modes := make([]mode, 6)
	for i := range modes {
		modes[i] = mode{
			ax:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(nx),
			ay:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(ny),
			px:  rng.Float64() * 2 * math.Pi,
			py:  rng.Float64() * 2 * math.Pi,
			amp: rng.Float64() + 0.2,
		}
	}
	f := field.NewField2D(nx, ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			var u, v float64
			for _, m := range modes {
				u += m.amp * math.Sin(m.ax*float64(i)+m.px) * math.Cos(m.ay*float64(j)+m.py)
				v += m.amp * math.Cos(m.ax*float64(i)+m.py) * math.Sin(m.ay*float64(j)+m.px)
			}
			idx := f.Idx(i, j)
			f.U[idx] = float32(u)
			f.V[idx] = float32(v)
		}
	}
	return f
}

func smooth3D(seed int64, nx, ny, nz int) *field.Field3D {
	rng := rand.New(rand.NewSource(seed))
	type mode struct{ ax, ay, az, p1, p2, p3, amp float64 }
	modes := make([]mode, 4)
	for i := range modes {
		modes[i] = mode{
			ax:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(nx),
			ay:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(ny),
			az:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(nz),
			p1:  rng.Float64() * 2 * math.Pi,
			p2:  rng.Float64() * 2 * math.Pi,
			p3:  rng.Float64() * 2 * math.Pi,
			amp: rng.Float64() + 0.2,
		}
	}
	f := field.NewField3D(nx, ny, nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				var u, v, w float64
				x, y, z := float64(i), float64(j), float64(k)
				for _, m := range modes {
					u += m.amp * math.Sin(m.ax*x+m.p1) * math.Cos(m.ay*y+m.p2) * math.Cos(m.az*z+m.p3)
					v += m.amp * math.Cos(m.ax*x+m.p2) * math.Sin(m.ay*y+m.p3) * math.Cos(m.az*z+m.p1)
					w += m.amp * math.Cos(m.ax*x+m.p3) * math.Cos(m.ay*y+m.p1) * math.Sin(m.az*z+m.p2)
				}
				idx := f.Idx(i, j, k)
				f.U[idx] = float32(u)
				f.V[idx] = float32(v)
				f.W[idx] = float32(w)
			}
		}
	}
	return f
}

func maxAbsErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestHeaderRoundTrip(t *testing.T) {
	h := header{
		NDim: 3, NX: 100, NY: 200, NZ: 50, Shift: 17, Tau: 12345,
		Spec: ST3, Order: orderTwoPhase,
		HasGhost: [6]bool{true, false, true, true, false, true},
		Border:   true,
		HasCRC:   true, PayloadCRC: 0xdeadbeef,
	}
	var got header
	if err := got.unmarshal(h.marshal()); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header round trip: %+v != %+v", got, h)
	}
	if err := got.unmarshal([]byte{1, 2}); err == nil {
		t.Error("short header should fail")
	}
	if err := got.unmarshal(make([]byte, 16)); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Error("zero Tau must be rejected")
	}
	if err := (Options{Tau: 0.1, Spec: Speculation(9)}).Validate(); err == nil {
		t.Error("unknown speculation must be rejected")
	}
	if err := (Options{Tau: 0.1, Spec: ST4}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpeculationString(t *testing.T) {
	for s, want := range map[Speculation]string{NoSpec: "NoSpec", ST1: "ST1", ST2: "ST2", ST3: "ST3", ST4: "ST4"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestRoundTrip2DErrorBound(t *testing.T) {
	f := smooth2D(1, 48, 40)
	const tau = 0.01
	blob, _, err := Compress2D(f, Options{Tau: tau})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != f.NX || g.NY != f.NY {
		t.Fatalf("dims %dx%d", g.NX, g.NY)
	}
	if e := maxAbsErr(f.U, g.U); e > tau {
		t.Errorf("u error %v > tau", e)
	}
	if e := maxAbsErr(f.V, g.V); e > tau {
		t.Errorf("v error %v > tau", e)
	}
	raw := float64(len(f.U)+len(f.V)) * 4
	if cr := raw / float64(len(blob)); cr < 2 {
		t.Errorf("compression ratio %.2f too low for smooth data", cr)
	}
}

func TestRoundTrip3DErrorBound(t *testing.T) {
	f := smooth3D(2, 14, 12, 10)
	const tau = 0.01
	blob, _, err := Compress3D(f, Options{Tau: tau})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress3D(blob)
	if err != nil {
		t.Fatal(err)
	}
	for c, pair := range [][2][]float32{{f.U, g.U}, {f.V, g.V}, {f.W, g.W}} {
		if e := maxAbsErr(pair[0], pair[1]); e > tau {
			t.Errorf("component %d error %v > tau", c, e)
		}
	}
}

func TestCPPreservation2DAllSpecs(t *testing.T) {
	f := smooth2D(3, 48, 40)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField2D(f, tr)
	if len(orig) == 0 {
		t.Fatal("test field has no critical points")
	}
	for _, spec := range []Speculation{NoSpec, ST1, ST2, ST3, ST4} {
		blob, err := CompressField2D(f, tr, Options{Tau: 0.05, Spec: spec})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		g, err := Decompress2D(blob)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		dec := cp.DetectField2D(g, tr)
		rep := cp.Compare(orig, dec)
		if !rep.Preserved() {
			t.Errorf("%v: critical points not preserved: %v", spec, rep)
		}
		if rep.TP != len(orig) {
			t.Errorf("%v: TP=%d, want %d", spec, rep.TP, len(orig))
		}
	}
}

func TestCPPreservation3DAllSpecs(t *testing.T) {
	f := smooth3D(4, 14, 12, 10)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField3D(f, tr)
	if len(orig) == 0 {
		t.Fatal("test field has no critical points")
	}
	for _, spec := range []Speculation{NoSpec, ST1, ST2, ST3, ST4} {
		blob, err := CompressField3D(f, tr, Options{Tau: 0.05, Spec: spec})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		g, err := Decompress3D(blob)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		rep := cp.Compare(orig, cp.DetectField3D(g, tr))
		if !rep.Preserved() {
			t.Errorf("%v: critical points not preserved: %v", spec, rep)
		}
	}
}

func TestSpeculationImprovesRatio(t *testing.T) {
	f := smooth2D(5, 64, 64)
	tr, _ := fixed.Fit(f.U, f.V)
	sizes := map[Speculation]int{}
	for _, spec := range []Speculation{NoSpec, ST2, ST4} {
		blob, err := CompressField2D(f, tr, Options{Tau: 0.01, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		sizes[spec] = len(blob)
	}
	if sizes[ST4] > sizes[NoSpec] {
		t.Errorf("ST4 (%d bytes) should not exceed NoSpec (%d bytes)", sizes[ST4], sizes[NoSpec])
	}
}

func TestDeterministicCompression(t *testing.T) {
	f := smooth2D(6, 32, 32)
	a, _, err := Compress2D(f, Options{Tau: 0.01, Spec: ST2})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := Compress2D(f, Options{Tau: 0.01, Spec: ST2})
	if !bytes.Equal(a, b) {
		t.Fatal("compression not deterministic")
	}
}

func TestEncoderDecompressedMatchesDecoder(t *testing.T) {
	f := smooth2D(7, 32, 24)
	tr, _ := fixed.Fit(f.U, f.V)
	enc, err := NewEncoder2D(Block2D{NX: f.NX, NY: f.NY, U: f.U, V: f.V, Transform: tr, Opts: Options{Tau: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	enc.Run()
	eu, ev := enc.Decompressed()
	blob, err := enc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range eu {
		if eu[i] != g.U[i] || ev[i] != g.V[i] {
			t.Fatalf("in-process and decoded reconstructions diverge at %d", i)
		}
	}
}

func TestLosslessBorderBlock(t *testing.T) {
	f := smooth2D(8, 24, 20)
	tr, _ := fixed.Fit(f.U, f.V)
	enc, err := NewEncoder2D(Block2D{
		NX: f.NX, NY: f.NY, U: f.U, V: f.V, Transform: tr,
		Opts:           Options{Tau: 0.05},
		Neighbor:       [4]bool{true, true, true, true},
		LosslessBorder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc.Run()
	blob, _ := enc.Finish()
	g, err := Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Border vertices must be reconstructed to the exact fixed-point
	// values of the input.
	fx := make([]int64, len(f.U))
	gx := make([]int64, len(f.U))
	tr.ToFixed(f.U, fx)
	tr.ToFixed(g.U, gx)
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			if i != 0 && i != f.NX-1 && j != 0 && j != f.NY-1 {
				continue
			}
			idx := j*f.NX + i
			if fx[idx] != gx[idx] {
				t.Fatalf("border vertex (%d,%d) not lossless", i, j)
			}
		}
	}
}

// TestTwoPhasePair wires two horizontally adjacent blocks through the
// ratio-oriented two-phase protocol by hand and checks global critical
// point preservation, including the border cells.
func TestTwoPhasePair(t *testing.T) {
	nx, ny := 40, 24
	f := smooth2D(9, nx, ny)
	tr, _ := fixed.Fit(f.U, f.V)
	orig := cp.DetectField2D(f, tr)
	if len(orig) == 0 {
		t.Fatal("no critical points in test field")
	}

	half := nx / 2
	sub := func(x0, w int) ([]float32, []float32) {
		u := make([]float32, w*ny)
		v := make([]float32, w*ny)
		for j := 0; j < ny; j++ {
			copy(u[j*w:], f.U[j*nx+x0:j*nx+x0+w])
			copy(v[j*w:], f.V[j*nx+x0:j*nx+x0+w])
		}
		return u, v
	}
	u0, v0 := sub(0, half)
	u1, v1 := sub(half, nx-half)

	opts := Options{Tau: 0.05, Spec: NoSpec}
	left, err := NewEncoder2D(Block2D{
		NX: half, NY: ny, U: u0, V: v0, Transform: tr, Opts: opts,
		GlobalX0: 0, GlobalY0: 0, GlobalNX: nx, GlobalNY: ny,
		Neighbor: [4]bool{false, true, false, false}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewEncoder2D(Block2D{
		NX: nx - half, NY: ny, U: u1, V: v1, Transform: tr, Opts: opts,
		GlobalX0: half, GlobalY0: 0, GlobalNX: nx, GlobalNY: ny,
		Neighbor: [4]bool{true, false, false, false}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase-1 exchange: originals of the facing borders.
	ru, rv := right.BorderLine(SideMinX)
	if err := left.SetGhostLine(SideMaxX, ru, rv); err != nil {
		t.Fatal(err)
	}
	lu, lv := left.BorderLine(SideMaxX)
	if err := right.SetGhostLine(SideMinX, lu, lv); err != nil {
		t.Fatal(err)
	}
	left.Prepare()
	right.Prepare()
	left.RunPhase1()
	right.RunPhase1()

	// Phase-2 exchange: the right block's min-x column is now
	// decompressed; the left block needs it to finish its max column.
	ru, rv = right.BorderLine(SideMinX)
	if err := left.SetGhostLine(SideMaxX, ru, rv); err != nil {
		t.Fatal(err)
	}
	left.RunPhase2()
	right.RunPhase2()

	lblob, err := left.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rblob, err := right.Finish()
	if err != nil {
		t.Fatal(err)
	}

	lf, err := Decompress2D(lblob)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Decompress2D(rblob)
	if err != nil {
		t.Fatal(err)
	}

	// Reassemble and compare critical points globally.
	g := field.NewField2D(nx, ny)
	for j := 0; j < ny; j++ {
		copy(g.U[j*nx:], lf.U[j*half:(j+1)*half])
		copy(g.V[j*nx:], lf.V[j*half:(j+1)*half])
		copy(g.U[j*nx+half:], rf.U[j*(nx-half):(j+1)*(nx-half)])
		copy(g.V[j*nx+half:], rf.V[j*(nx-half):(j+1)*(nx-half)])
	}
	rep := cp.Compare(orig, cp.DetectField2D(g, tr))
	if !rep.Preserved() {
		t.Fatalf("two-phase pair broke critical points: %v", rep)
	}
	if e := maxAbsErr(f.U, g.U); e > 0.05 {
		t.Errorf("error bound violated across blocks: %v", e)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := Decompress2D([]byte{1, 2, 3}); err == nil {
		t.Error("garbage must fail")
	}
	f := smooth2D(10, 16, 16)
	blob, _, _ := Compress2D(f, Options{Tau: 0.01})
	if _, err := Decompress3D(blob); err == nil {
		t.Error("decoding a 2D blob as 3D must fail")
	}
	ndim, nx, ny, _, err := PeekHeader(blob)
	if err != nil || ndim != 2 || nx != 16 || ny != 16 {
		t.Errorf("PeekHeader = %d %d %d %v", ndim, nx, ny, err)
	}
}

func TestCompressRejectsBadInput(t *testing.T) {
	if _, err := NewEncoder2D(Block2D{NX: 1, NY: 5}); err == nil {
		t.Error("1-wide block must be rejected")
	}
	if _, err := NewEncoder2D(Block2D{NX: 4, NY: 4, U: make([]float32, 3), V: make([]float32, 16), Opts: Options{Tau: 1}, Transform: fixed.FromShift(10)}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if _, err := NewEncoder3D(Block3D{NX: 4, NY: 4, NZ: 1}); err == nil {
		t.Error("flat 3D block must be rejected")
	}
}

func TestVisitOrderCoversAllVertices(t *testing.T) {
	for _, mode := range []orderMode{orderRaster, orderTwoPhase} {
		order := visitOrder(5, 4, 1, mode, true, true, false)
		if len(order) != 20 {
			t.Fatalf("order covers %d vertices", len(order))
		}
		seen := map[[3]int]bool{}
		for _, v := range order {
			if seen[v] {
				t.Fatalf("vertex %v visited twice", v)
			}
			seen[v] = true
		}
	}
	o3 := visitOrder(3, 3, 3, orderTwoPhase, true, false, true)
	if len(o3) != 27 {
		t.Fatalf("3D order covers %d", len(o3))
	}
}

func TestTwoPhaseOrderPutsMaxPlanesLast(t *testing.T) {
	order := visitOrder(4, 3, 1, orderTwoPhase, true, false, false)
	// Vertices with i == 3 must all come after the others.
	phase2Started := false
	for _, v := range order {
		if v[0] == 3 {
			phase2Started = true
		} else if phase2Started {
			t.Fatalf("phase-1 vertex %v after phase 2 started", v)
		}
	}
}

func BenchmarkCompress2DNoSpec(b *testing.B) {
	f := smooth2D(11, 64, 64)
	b.SetBytes(int64(len(f.U)+len(f.V)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress2D(f, Options{Tau: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompress2DST4(b *testing.B) {
	f := smooth2D(12, 64, 64)
	b.SetBytes(int64(len(f.U)+len(f.V)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress2D(f, Options{Tau: 0.01, Spec: ST4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress2D(b *testing.B) {
	f := smooth2D(13, 64, 64)
	blob, _, _ := Compress2D(f, Options{Tau: 0.01})
	b.SetBytes(int64(len(f.U)+len(f.V)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress2D(blob); err != nil {
			b.Fatal(err)
		}
	}
}
