package core

import (
	"errors"

	"repro/internal/fixed"
	"repro/internal/safedim"
)

// Decode-to-writer adapters: reconstruct a block and hand its planes to
// a callback in row order, converting a bounded run of planes at a time
// into reused buffers instead of materializing a float field next to
// the fixed-point state. The fixed-point components are still O(block)
// — unavoidable, the visit order is not plane-sequential — but a block
// is one slab in the streaming pipeline, so peak memory stays O(slab).

// errTemporalTo reports a temporally predicted block reaching a To
// decoder, which has no previous frame to chain from.
var errTemporalTo = errors.New("core: temporally predicted block cannot stream-decode without its previous frame")

// Decompress2DTo decodes a 2D block and streams its planes (rows) into
// write in ascending order: write(start, comps) receives rows
// [start, start+k) with comps[c] holding k*nx values valid only during
// the call. chunk bounds the rows per call (<= 0 picks a default).
func Decompress2DTo(blob []byte, chunk int, write func(start int, comps [][]float32) error) (nx, ny int, err error) {
	h, comps, err := decodeFixed(blob, 2, func(*header) ([][]int64, error) { return nil, errTemporalTo })
	if err != nil {
		return 0, 0, err
	}
	if err := planesTo(comps, fixed.FromShift(h.Shift), h.NX, h.NY, chunk, write); err != nil {
		return 0, 0, err
	}
	return h.NX, h.NY, nil
}

// Decompress3DTo is the 3D variant: planes are whole k-slices of
// nx*ny values each.
func Decompress3DTo(blob []byte, chunk int, write func(start int, comps [][]float32) error) (nx, ny, nz int, err error) {
	h, comps, err := decodeFixed(blob, 3, func(*header) ([][]int64, error) { return nil, errTemporalTo })
	if err != nil {
		return 0, 0, 0, err
	}
	if err := planesTo(comps, fixed.FromShift(h.Shift), h.NX*h.NY, h.NZ, chunk, write); err != nil {
		return 0, 0, 0, err
	}
	return h.NX, h.NY, h.NZ, nil
}

// planesTo converts fixed-point components to float32 in runs of at
// most chunk planes of planeSize points and delivers each run to write.
func planesTo(comps [][]int64, tr fixed.Transform, planeSize, nPlanes, chunk int,
	write func(start int, comps [][]float32) error) error {

	if chunk <= 0 {
		chunk = 16
	}
	if chunk > nPlanes {
		chunk = nPlanes
	}
	out := make([][]float32, len(comps))
	for c := range out {
		out[c] = make([]float32, safedim.MustProduct(chunk, planeSize))
	}
	for start := 0; start < nPlanes; start += chunk {
		count := chunk
		if start+count > nPlanes {
			count = nPlanes - start
		}
		run := make([][]float32, len(comps))
		for c := range comps {
			run[c] = out[c][:count*planeSize]
			tr.ToFloat(comps[c][start*planeSize:(start+count)*planeSize], run[c])
		}
		if err := write(start, run); err != nil {
			return err
		}
	}
	return nil
}
