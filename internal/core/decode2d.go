package core

import (
	"errors"

	"repro/internal/field"
	"repro/internal/fixed"
)

// Decompress2D reconstructs a 2D block compressed with Encoder2D. Note
// that decompression replays the visit order and the stored bounds only —
// no critical point detection or bound derivation runs, which is why it is
// several times faster than compression.
func Decompress2D(blob []byte) (*field.Field2D, error) {
	return Decompress2DWithPrev(blob, nil)
}

// Decompress2DWithPrev reconstructs a temporally predicted 2D block
// against the previous decompressed frame (which must be the exact output
// of decoding the preceding archive step).
func Decompress2DWithPrev(blob []byte, prev *field.Field2D) (*field.Field2D, error) {
	h, comps, err := decodeFixed(blob, 2, func(h *header) ([][]int64, error) {
		if prev == nil || prev.NX != h.NX || prev.NY != h.NY {
			return nil, errors.New("core: temporally predicted block needs the matching previous frame (Decompress2DWithPrev)")
		}
		if len(prev.U) != h.NX*h.NY || len(prev.V) != h.NX*h.NY {
			return nil, errors.New("core: previous frame component length mismatch")
		}
		return prevFixed(h, [][]float32{prev.U, prev.V}), nil
	})
	if err != nil {
		return nil, err
	}
	f := field.NewField2D(h.NX, h.NY)
	tr := fixed.FromShift(h.Shift)
	tr.ToFloat(comps[0], f.U)
	tr.ToFloat(comps[1], f.V)
	return f, nil
}

// prevFixed converts a previous frame's float components to fixed point
// under the block's transform, for temporal prediction during decode.
func prevFixed(h *header, srcs [][]float32) [][]int64 {
	tr := fixed.FromShift(h.Shift)
	prevs := make([][]int64, len(srcs))
	for c, src := range srcs {
		prevs[c] = make([]int64, len(src))
		tr.ToFixed(src, prevs[c])
	}
	return prevs
}
