package core

import (
	"errors"
	"fmt"

	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/huffman"
	"repro/internal/quantizer"
)

// visitOrder2D yields the own-coordinate vertices of a block in
// compression order: plain raster, or (two-phase mode) raster excluding
// neighbor-facing max planes followed by a raster over those planes.
func visitOrder2D(nx, ny int, mode orderMode, hasMaxX, hasMaxY bool) [][2]int {
	order := make([][2]int, 0, nx*ny)
	if mode != orderTwoPhase {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				order = append(order, [2]int{i, j})
			}
		}
		return order
	}
	phase2 := func(i, j int) bool {
		return (hasMaxX && i == nx-1) || (hasMaxY && j == ny-1)
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if !phase2(i, j) {
				order = append(order, [2]int{i, j})
			}
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if phase2(i, j) {
				order = append(order, [2]int{i, j})
			}
		}
	}
	return order
}

// Decompress2D reconstructs a 2D block compressed with Encoder2D. Note
// that decompression replays the visit order and the stored bounds only —
// no critical point detection or bound derivation runs, which is why it is
// several times faster than compression.
func Decompress2D(blob []byte) (*field.Field2D, error) {
	return Decompress2DWithPrev(blob, nil)
}

// Decompress2DWithPrev reconstructs a temporally predicted 2D block
// against the previous decompressed frame (which must be the exact output
// of decoding the preceding archive step).
func Decompress2DWithPrev(blob []byte, prev *field.Field2D) (*field.Field2D, error) {
	h, u, v, err := decode2DFixed(blob, prev)
	if err != nil {
		return nil, err
	}
	f := field.NewField2D(h.NX, h.NY)
	tr := fixed.FromShift(h.Shift)
	tr.ToFloat(u, f.U)
	tr.ToFloat(v, f.V)
	return f, nil
}

func decode2DFixed(blob []byte, prev *field.Field2D) (*header, []int64, []int64, error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(sections) != 4 {
		return nil, nil, nil, errors.New("core: wrong section count")
	}
	var h header
	if err := h.unmarshal(sections[0]); err != nil {
		return nil, nil, nil, err
	}
	if h.NDim != 2 {
		return nil, nil, nil, fmt.Errorf("core: expected 2D block, got %dD", h.NDim)
	}
	expSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: bound stream: %w", err)
	}
	codeSyms, err := huffman.Decompress(sections[2])
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: code stream: %w", err)
	}
	literals := sections[3]
	n := h.NX * h.NY
	if len(expSyms) != n || len(codeSyms) != 2*n {
		return nil, nil, nil, errors.New("core: stream length mismatch")
	}
	var prevU, prevV []int64
	if h.Temporal {
		if prev == nil || prev.NX != h.NX || prev.NY != h.NY {
			return nil, nil, nil, errors.New("core: temporally predicted block needs the matching previous frame (Decompress2DWithPrev)")
		}
		tr := fixed.FromShift(h.Shift)
		prevU = make([]int64, n)
		prevV = make([]int64, n)
		tr.ToFixed(prev.U, prevU)
		tr.ToFixed(prev.V, prevV)
	}
	u := make([]int64, n)
	v := make([]int64, n)
	done := make([]bool, n)
	order := visitOrder2D(h.NX, h.NY, h.Order, h.HasGhost[SideMaxX], h.HasGhost[SideMaxY])
	k := 0
	for _, ov := range order {
		oi, oj := ov[0], ov[1]
		idx := oj*h.NX + oi
		bound := quantizer.BoundFromSym(uint8(expSyms[k]), h.Tau)
		for comp, z := range [2][]int64{u, v} {
			sym := codeSyms[2*k+comp]
			if sym == escapeSym {
				if len(literals) < 4 {
					return nil, nil, nil, errors.New("core: literal stream underrun")
				}
				z[idx], literals = readLiteral(literals)
				continue
			}
			var pred int64
			if h.Temporal {
				if comp == 0 {
					pred = prevU[idx]
				} else {
					pred = prevV[idx]
				}
			} else {
				pred = predictOwn2D(z, done, h.NX, oi, oj)
			}
			z[idx] = quantizer.Reconstruct(huffman.Unzigzag(sym), pred, bound)
		}
		done[idx] = true
		k++
	}
	return &h, u, v, nil
}
