package core_test

// Golden byte-identity corpus for the compression kernel. The testdata
// under testdata/golden was produced by the pre-refactor (seed) engines;
// the kernel refactor must reproduce every stream byte for byte and every
// decoded field bit for bit, which pins the on-disk format, the SoS
// consistency, and the zero-FP/FN/FT guarantees across refactors.
//
// Regenerate (only when the format intentionally changes) with:
//
//	go test ./internal/core/ -run TestGolden -update
//
// and explain the format change in the commit message.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
	"repro/internal/parallel"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden testdata")

// goldenField2D builds a deterministic 2D field: smooth trigonometric
// flow (which carries critical points) plus LCG noise (which exercises
// escapes and speculation failures). No math/rand, so the corpus is
// reproducible independent of the standard library's generator.
func goldenField2D(seed uint64, nx, ny int) *field.Field2D {
	f := field.NewField2D(nx, ny)
	rnd := lcg(seed)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x, y := float64(i)*0.37, float64(j)*0.29
			idx := j*nx + i
			f.U[idx] = float32(math.Sin(x)*math.Cos(y)) + 0.1*rnd()
			f.V[idx] = float32(math.Cos(x)*math.Sin(y)) + 0.1*rnd()
		}
	}
	return f
}

func goldenField3D(seed uint64, nx, ny, nz int) *field.Field3D {
	f := field.NewField3D(nx, ny, nz)
	rnd := lcg(seed)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x, y, z := float64(i)*0.41, float64(j)*0.31, float64(k)*0.23
				idx := (k*ny+j)*nx + i
				f.U[idx] = float32(math.Sin(x)*math.Cos(y)) + 0.1*rnd()
				f.V[idx] = float32(math.Cos(y)*math.Sin(z)) + 0.1*rnd()
				f.W[idx] = float32(math.Cos(z)*math.Sin(x)) + 0.1*rnd()
			}
		}
	}
	return f
}

func lcg(s uint64) func() float32 {
	return func() float32 {
		s = s*6364136223846793005 + 1442695040888963407
		return float32(int32(s>>33)) / float32(1<<31)
	}
}

// evolve2D derives the "next frame" for the temporal cases: a small
// deterministic drift of the base field.
func evolve2D(f *field.Field2D) *field.Field2D {
	g := field.NewField2D(f.NX, f.NY)
	for i := range f.U {
		g.U[i] = f.U[i] + 0.01*float32(math.Sin(float64(i)*0.13))
		g.V[i] = f.V[i] + 0.01*float32(math.Cos(float64(i)*0.17))
	}
	return g
}

func evolve3D(f *field.Field3D) *field.Field3D {
	g := field.NewField3D(f.NX, f.NY, f.NZ)
	for i := range f.U {
		g.U[i] = f.U[i] + 0.01*float32(math.Sin(float64(i)*0.13))
		g.V[i] = f.V[i] + 0.01*float32(math.Cos(float64(i)*0.17))
		g.W[i] = f.W[i] + 0.01*float32(math.Sin(float64(i)*0.19))
	}
	return g
}

type goldenCase struct {
	name string
	run  func(t *testing.T) (blobs [][]byte, decoded [][]float32)
}

func goldenCases() []goldenCase {
	const (
		nx2, ny2      = 23, 17
		nx3, ny3, nz3 = 11, 9, 8
		tau           = 0.02
	)
	cases := []goldenCase{}

	// Plain single-node compression across the speculation ladder.
	for _, spec := range []core.Speculation{core.NoSpec, core.ST1, core.ST2, core.ST3, core.ST4} {
		spec := spec
		cases = append(cases, goldenCase{
			name: "2d-plain-" + spec.String(),
			run: func(t *testing.T) ([][]byte, [][]float32) {
				f := goldenField2D(11, nx2, ny2)
				tr := mustFit(t, f.U, f.V)
				blob, err := core.CompressField2D(f, tr, core.Options{Tau: tau, Spec: spec})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := core.Decompress2D(blob)
				if err != nil {
					t.Fatal(err)
				}
				return [][]byte{blob}, [][]float32{dec.U, dec.V}
			},
		}, goldenCase{
			name: "3d-plain-" + spec.String(),
			run: func(t *testing.T) ([][]byte, [][]float32) {
				f := goldenField3D(13, nx3, ny3, nz3)
				tr := mustFit(t, f.U, f.V, f.W)
				blob, err := core.CompressField3D(f, tr, core.Options{Tau: tau, Spec: spec})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := core.Decompress3D(blob)
				if err != nil {
					t.Fatal(err)
				}
				return [][]byte{blob}, [][]float32{dec.U, dec.V, dec.W}
			},
		})
	}

	// Temporal prediction against a previous frame.
	cases = append(cases, goldenCase{
		name: "2d-temporal",
		run: func(t *testing.T) ([][]byte, [][]float32) {
			prev := goldenField2D(21, nx2, ny2)
			cur := evolve2D(prev)
			tr := mustFit(t, cur.U, cur.V)
			enc, err := core.NewEncoder2D(core.Block2D{
				NX: nx2, NY: ny2, U: cur.U, V: cur.V,
				Transform: tr, Opts: core.Options{Tau: tau, Spec: core.ST2},
				PrevU: prev.U, PrevV: prev.V,
			})
			if err != nil {
				t.Fatal(err)
			}
			enc.Run()
			blob, err := enc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.Decompress2DWithPrev(blob, prev)
			if err != nil {
				t.Fatal(err)
			}
			return [][]byte{blob}, [][]float32{dec.U, dec.V}
		},
	}, goldenCase{
		name: "3d-temporal",
		run: func(t *testing.T) ([][]byte, [][]float32) {
			prev := goldenField3D(23, nx3, ny3, nz3)
			cur := evolve3D(prev)
			tr := mustFit(t, cur.U, cur.V, cur.W)
			enc, err := core.NewEncoder3D(core.Block3D{
				NX: nx3, NY: ny3, NZ: nz3, U: cur.U, V: cur.V, W: cur.W,
				Transform: tr, Opts: core.Options{Tau: tau, Spec: core.ST2},
				PrevU: prev.U, PrevV: prev.V, PrevW: prev.W,
			})
			if err != nil {
				t.Fatal(err)
			}
			enc.Run()
			blob, err := enc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.Decompress3DWithPrev(blob, prev)
			if err != nil {
				t.Fatal(err)
			}
			return [][]byte{blob}, [][]float32{dec.U, dec.V, dec.W}
		},
	})

	// Lossless-border block carved out of a larger global domain (global
	// placement exercises the SoS GlobalID path).
	cases = append(cases, goldenCase{
		name: "2d-border",
		run: func(t *testing.T) ([][]byte, [][]float32) {
			f := goldenField2D(31, nx2, ny2)
			tr := mustFit(t, f.U, f.V)
			enc, err := core.NewEncoder2D(core.Block2D{
				NX: nx2, NY: ny2, U: f.U, V: f.V,
				Transform: tr, Opts: core.Options{Tau: tau, Spec: core.ST1},
				GlobalX0: 3, GlobalY0: 5, GlobalNX: 64, GlobalNY: 64,
				Neighbor:       [4]bool{true, true, false, true},
				LosslessBorder: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			enc.Run()
			blob, err := enc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.Decompress2D(blob)
			if err != nil {
				t.Fatal(err)
			}
			return [][]byte{blob}, [][]float32{dec.U, dec.V}
		},
	}, goldenCase{
		name: "3d-border",
		run: func(t *testing.T) ([][]byte, [][]float32) {
			f := goldenField3D(33, nx3, ny3, nz3)
			tr := mustFit(t, f.U, f.V, f.W)
			enc, err := core.NewEncoder3D(core.Block3D{
				NX: nx3, NY: ny3, NZ: nz3, U: f.U, V: f.V, W: f.W,
				Transform: tr, Opts: core.Options{Tau: tau, Spec: core.ST1},
				GlobalX0: 2, GlobalY0: 4, GlobalZ0: 6,
				GlobalNX: 32, GlobalNY: 32, GlobalNZ: 32,
				Neighbor:       [6]bool{true, false, true, true, false, true},
				LosslessBorder: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			enc.Run()
			blob, err := enc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.Decompress3D(blob)
			if err != nil {
				t.Fatal(err)
			}
			return [][]byte{blob}, [][]float32{dec.U, dec.V, dec.W}
		},
	})

	// Two-phase (ratio-oriented) distributed runs: per-rank streams and
	// the reassembled global field.
	cases = append(cases, goldenCase{
		name: "2d-twophase",
		run: func(t *testing.T) ([][]byte, [][]float32) {
			f := goldenField2D(41, 2*nx2, 2*ny2)
			tr := mustFit(t, f.U, f.V)
			grid := parallel.Grid2D{PX: 2, PY: 2}
			res, err := parallel.CompressDistributed2D(f, tr,
				core.Options{Tau: tau, Spec: core.ST2}, grid, parallel.RatioOriented, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			dec, _, err := parallel.DecompressDistributed2D(res.Blobs, grid, f.NX, f.NY, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Blobs, [][]float32{dec.U, dec.V}
		},
	}, goldenCase{
		name: "3d-twophase",
		run: func(t *testing.T) ([][]byte, [][]float32) {
			f := goldenField3D(43, 2*nx3, 2*ny3, nz3)
			tr := mustFit(t, f.U, f.V, f.W)
			grid := parallel.Grid3D{PX: 2, PY: 2, PZ: 1}
			res, err := parallel.CompressDistributed3D(f, tr,
				core.Options{Tau: tau, Spec: core.ST2}, grid, parallel.RatioOriented, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			dec, _, err := parallel.DecompressDistributed3D(res.Blobs, grid, f.NX, f.NY, f.NZ, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Blobs, [][]float32{dec.U, dec.V, dec.W}
		},
	})
	return cases
}

func mustFit(t *testing.T, comps ...[]float32) fixed.Transform {
	t.Helper()
	tr, err := fixed.Fit(comps...)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// packBlobs frames the per-rank streams of one case into a single golden
// file: uvarint count, then uvarint length + bytes per blob.
func packBlobs(blobs [][]byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(blobs)))
	for _, b := range blobs {
		out = binary.AppendUvarint(out, uint64(len(b)))
		out = append(out, b...)
	}
	return out
}

// hashDecoded digests the decoded components as little-endian float32
// bits, pinning the decoder output exactly (not within epsilon).
func hashDecoded(decoded [][]float32) string {
	h := sha256.New()
	var buf [4]byte
	for _, comp := range decoded {
		for _, v := range comp {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGolden(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			blobs, decoded := c.run(t)
			got := packBlobs(blobs)
			sum := hashDecoded(decoded)
			binPath := filepath.Join(dir, c.name+".bin")
			sumPath := filepath.Join(dir, c.name+".sum")
			if *updateGolden {
				if err := os.WriteFile(binPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(sumPath, []byte(sum+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(binPath)
			if err != nil {
				t.Fatalf("missing golden stream (run with -update to regenerate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("compressed stream differs from golden %s (len got=%d want=%d)", binPath, len(got), len(want))
			}
			wantSum, err := os.ReadFile(sumPath)
			if err != nil {
				t.Fatalf("missing golden digest: %v", err)
			}
			if sum != string(bytes.TrimSpace(wantSum)) {
				t.Errorf("decoded field digest differs from golden %s", sumPath)
			}
		})
	}
}

// TestGoldenDecodeFromDisk re-decodes the stored golden streams directly,
// so a refactored decoder is checked against seed-produced bytes even if
// the encoder changed in lockstep.
func TestGoldenDecodeFromDisk(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "3d-plain-NoSpec.bin"))
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := unpackBlobs(data)
	if err != nil || len(blobs) != 1 {
		t.Fatalf("bad golden container: %v", err)
	}
	dec, err := core.Decompress3D(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := hashDecoded([][]float32{dec.U, dec.V, dec.W}); got == "" {
		t.Fatal("empty digest")
	}
	data2, err := os.ReadFile(filepath.Join("testdata", "golden", "2d-plain-NoSpec.bin"))
	if err != nil {
		t.Fatal(err)
	}
	blobs2, err := unpackBlobs(data2)
	if err != nil || len(blobs2) != 1 {
		t.Fatalf("bad golden container: %v", err)
	}
	if _, err := core.Decompress2D(blobs2[0]); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenV1Decode decodes the frozen version-1 corpus under
// testdata/golden-v1 — streams written before the payload-checksum format
// bump — and pins the decoded fields against the v1 digests. This is the
// backward-compatibility guarantee: pre-checksum blobs must keep decoding
// bit for bit even though newly written blobs carry version 2 headers.
func TestGoldenV1Decode(t *testing.T) {
	const (
		nx2, ny2      = 23, 17
		nx3, ny3, nz3 = 11, 9, 8
	)
	type v1Case struct {
		name   string
		decode func(t *testing.T, blobs [][]byte) [][]float32
	}
	one2D := func(t *testing.T, blobs [][]byte) [][]float32 {
		t.Helper()
		if len(blobs) != 1 {
			t.Fatalf("want 1 blob, got %d", len(blobs))
		}
		dec, err := core.Decompress2D(blobs[0])
		if err != nil {
			t.Fatal(err)
		}
		return [][]float32{dec.U, dec.V}
	}
	one3D := func(t *testing.T, blobs [][]byte) [][]float32 {
		t.Helper()
		if len(blobs) != 1 {
			t.Fatalf("want 1 blob, got %d", len(blobs))
		}
		dec, err := core.Decompress3D(blobs[0])
		if err != nil {
			t.Fatal(err)
		}
		return [][]float32{dec.U, dec.V, dec.W}
	}
	cases := []v1Case{}
	for _, spec := range []core.Speculation{core.NoSpec, core.ST1, core.ST2, core.ST3, core.ST4} {
		cases = append(cases,
			v1Case{"2d-plain-" + spec.String(), one2D},
			v1Case{"3d-plain-" + spec.String(), one3D})
	}
	cases = append(cases,
		v1Case{"2d-temporal", func(t *testing.T, blobs [][]byte) [][]float32 {
			prev := goldenField2D(21, nx2, ny2)
			dec, err := core.Decompress2DWithPrev(blobs[0], prev)
			if err != nil {
				t.Fatal(err)
			}
			return [][]float32{dec.U, dec.V}
		}},
		v1Case{"3d-temporal", func(t *testing.T, blobs [][]byte) [][]float32 {
			prev := goldenField3D(23, nx3, ny3, nz3)
			dec, err := core.Decompress3DWithPrev(blobs[0], prev)
			if err != nil {
				t.Fatal(err)
			}
			return [][]float32{dec.U, dec.V, dec.W}
		}},
		v1Case{"2d-border", one2D},
		v1Case{"3d-border", one3D},
		v1Case{"2d-twophase", func(t *testing.T, blobs [][]byte) [][]float32 {
			dec, _, err := parallel.DecompressDistributed2D(blobs,
				parallel.Grid2D{PX: 2, PY: 2}, 2*nx2, 2*ny2, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return [][]float32{dec.U, dec.V}
		}},
		v1Case{"3d-twophase", func(t *testing.T, blobs [][]byte) [][]float32 {
			dec, _, err := parallel.DecompressDistributed3D(blobs,
				parallel.Grid3D{PX: 2, PY: 2, PZ: 1}, 2*nx3, 2*ny3, nz3, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return [][]float32{dec.U, dec.V, dec.W}
		}})
	dir := filepath.Join("testdata", "golden-v1")
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, c.name+".bin"))
			if err != nil {
				t.Fatal(err)
			}
			blobs, err := unpackBlobs(data)
			if err != nil || len(blobs) == 0 {
				t.Fatalf("bad v1 container: %v", err)
			}
			decoded := c.decode(t, blobs)
			wantSum, err := os.ReadFile(filepath.Join(dir, c.name+".sum"))
			if err != nil {
				t.Fatal(err)
			}
			if got := hashDecoded(decoded); got != string(bytes.TrimSpace(wantSum)) {
				t.Errorf("v1 decoded field digest differs from %s.sum", c.name)
			}
		})
	}
}

func unpackBlobs(data []byte) ([][]byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errTruncated
	}
	data = data[k:]
	blobs := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		ln, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < ln {
			return nil, errTruncated
		}
		blobs = append(blobs, data[k:k+int(ln)])
		data = data[k+int(ln):]
	}
	return blobs, nil
}

var errTruncated = errTruncatedT{}

type errTruncatedT struct{}

func (errTruncatedT) Error() string { return "golden: truncated container" }
