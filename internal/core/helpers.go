package core

import "repro/internal/quantizer"

// Small helpers shared by the kernel, the decoders, and the adapters.
// They live here (not per engine) so both dimensions use one copy.

// escapeSym is the quantization-code symbol marking a literal escape. It
// is outside the zigzag range of valid codes (|code| < Radius).
const escapeSym = uint32(2 * quantizer.Radius)

// appendLiteral stores a fixed-point value on the literal stream as a
// little-endian 32-bit two's-complement word.
func appendLiteral(dst []byte, v int64) []byte {
	u := uint32(int32(v))
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

// readLiteral pops one literal off the stream.
func readLiteral(src []byte) (int64, []byte) {
	u := uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
	return int64(int32(u)), src[4:]
}

func sgn(v int64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
