package core

import (
	"math/rand"
	"testing"

	"repro/internal/cp"
	"repro/internal/field"
	"repro/internal/fixed"
)

// Adversarial preservation tests: tiny-integer fields sit exactly on the
// degeneracy set of the orientation predicates (zero determinants,
// duplicated vectors, components exactly zero), so every SoS tie-break,
// relaxation edge and speculation rollback path gets exercised. These
// configurations are where a sloppy strictness margin or an inconsistent
// tie-break would show up as FP/FN/FT.

func tinyField2D(seed int64, nx, ny int) *field.Field2D {
	rng := rand.New(rand.NewSource(seed))
	f := field.NewField2D(nx, ny)
	for i := range f.U {
		f.U[i] = float32(rng.Intn(7) - 3)
		f.V[i] = float32(rng.Intn(7) - 3)
	}
	return f
}

func tinyField3D(seed int64, n int) *field.Field3D {
	rng := rand.New(rand.NewSource(seed))
	f := field.NewField3D(n, n, n)
	for i := range f.U {
		f.U[i] = float32(rng.Intn(5) - 2)
		f.V[i] = float32(rng.Intn(5) - 2)
		f.W[i] = float32(rng.Intn(5) - 2)
	}
	return f
}

func TestAdversarialDegenerate2D(t *testing.T) {
	specs := []Speculation{NoSpec, ST1, ST2, ST3, ST4}
	for seed := int64(0); seed < 12; seed++ {
		f := tinyField2D(400+seed, 20, 16)
		tr, err := fixed.Fit(f.U, f.V)
		if err != nil {
			t.Fatal(err)
		}
		orig := cp.DetectField2D(f, tr)
		for _, spec := range specs {
			blob, err := CompressField2D(f, tr, Options{Tau: 1.5, Spec: spec})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, spec, err)
			}
			dec, err := Decompress2D(blob)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, spec, err)
			}
			rep := cp.Compare(orig, cp.DetectField2D(dec, tr))
			if !rep.Preserved() {
				t.Errorf("seed %d %v: degenerate field broke: %v (of %d)", seed, spec, rep, len(orig))
			}
		}
	}
}

func TestAdversarialDegenerate3D(t *testing.T) {
	specs := []Speculation{NoSpec, ST2, ST4}
	for seed := int64(0); seed < 6; seed++ {
		f := tinyField3D(500+seed, 8)
		tr, err := fixed.Fit(f.U, f.V, f.W)
		if err != nil {
			t.Fatal(err)
		}
		orig := cp.DetectField3D(f, tr)
		for _, spec := range specs {
			blob, err := CompressField3D(f, tr, Options{Tau: 1.5, Spec: spec})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, spec, err)
			}
			dec, err := Decompress3D(blob)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, spec, err)
			}
			rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
			if !rep.Preserved() {
				t.Errorf("seed %d %v: degenerate 3D field broke: %v (of %d)", seed, spec, rep, len(orig))
			}
		}
	}
}

// TestAdversarialConstantComponent exercises the planar-data degeneracy
// (one component identically zero) that floods the SoS fallback.
func TestAdversarialConstantComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	f := field.NewField3D(10, 10, 6)
	for i := range f.U {
		f.U[i] = float32(rng.Intn(9) - 4)
		f.V[i] = float32(rng.Intn(9) - 4)
		f.W[i] = 0 // planar field: every 4×4 orientation det vanishes
	}
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField3D(f, tr)
	for _, spec := range []Speculation{NoSpec, ST4} {
		blob, err := CompressField3D(f, tr, Options{Tau: 1.5, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress3D(blob)
		if err != nil {
			t.Fatal(err)
		}
		rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
		if !rep.Preserved() {
			t.Errorf("%v: planar field broke: %v (of %d)", spec, rep, len(orig))
		}
	}
}

// TestAdversarialDistributedDegenerate puts the degenerate data on rank
// borders, where tie-break consistency across blocks is essential.
func TestAdversarialDistributedDegenerateBorders(t *testing.T) {
	f := tinyField2D(700, 24, 24)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField2D(f, tr)

	// Manual 1×2 two-phase pair (reuses the wiring of TestTwoPhasePair).
	half := 12
	sub := func(x0, w int) ([]float32, []float32) {
		u := make([]float32, w*24)
		v := make([]float32, w*24)
		for j := 0; j < 24; j++ {
			copy(u[j*w:], f.U[j*24+x0:j*24+x0+w])
			copy(v[j*w:], f.V[j*24+x0:j*24+x0+w])
		}
		return u, v
	}
	u0, v0 := sub(0, half)
	u1, v1 := sub(half, half)
	opts := Options{Tau: 1.5, Spec: ST2}
	left, err := NewEncoder2D(Block2D{
		NX: half, NY: 24, U: u0, V: v0, Transform: tr, Opts: opts,
		GlobalNX: 24, GlobalNY: 24,
		Neighbor: [4]bool{SideMaxX: true}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewEncoder2D(Block2D{
		NX: half, NY: 24, U: u1, V: v1, Transform: tr, Opts: opts,
		GlobalX0: half, GlobalNX: 24, GlobalNY: 24,
		Neighbor: [4]bool{SideMinX: true}, TwoPhase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ru, rv := right.BorderLine(SideMinX)
	if err := left.SetGhostLine(SideMaxX, ru, rv); err != nil {
		t.Fatal(err)
	}
	lu, lv := left.BorderLine(SideMaxX)
	if err := right.SetGhostLine(SideMinX, lu, lv); err != nil {
		t.Fatal(err)
	}
	left.Prepare()
	right.Prepare()
	left.RunPhase1()
	right.RunPhase1()
	ru, rv = right.BorderLine(SideMinX)
	if err := left.SetGhostLine(SideMaxX, ru, rv); err != nil {
		t.Fatal(err)
	}
	left.RunPhase2()
	right.RunPhase2()

	lu2, lv2 := left.Decompressed()
	ru2, rv2 := right.Decompressed()
	g := field.NewField2D(24, 24)
	for j := 0; j < 24; j++ {
		copy(g.U[j*24:], lu2[j*half:(j+1)*half])
		copy(g.V[j*24:], lv2[j*half:(j+1)*half])
		copy(g.U[j*24+half:], ru2[j*half:(j+1)*half])
		copy(g.V[j*24+half:], rv2[j*half:(j+1)*half])
	}
	rep := cp.Compare(orig, cp.DetectField2D(g, tr))
	if !rep.Preserved() {
		t.Fatalf("degenerate border data broke across ranks: %v (of %d)", rep, len(orig))
	}
}
