package core_test

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/field"
	"repro/internal/fixed"
)

// Example compresses a small vector field with the critical-point-
// preserving compressor and verifies the topology survived.
func Example() {
	// A saddle flow: u = x−8, v = −(y−8).
	f := field.NewField2D(17, 17)
	for j := 0; j < 17; j++ {
		for i := 0; i < 17; i++ {
			idx := f.Idx(i, j)
			f.U[idx] = float32(i - 8)
			f.V[idx] = float32(-(j - 8))
		}
	}

	blob, tr, err := core.Compress2D(f, core.Options{Tau: 0.1, Spec: core.ST2})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.Decompress2D(blob)
	if err != nil {
		log.Fatal(err)
	}

	rep := cp.Compare(cp.DetectField2D(f, tr), cp.DetectField2D(dec, tr))
	fmt.Println("preserved:", rep.Preserved())
	fmt.Println("critical points:", rep.TP)
	// Output:
	// preserved: true
	// critical points: 1
}

// ExampleOptions_Validate shows the option contract.
func ExampleOptions_Validate() {
	fmt.Println(core.Options{}.Validate())
	fmt.Println(core.Options{Tau: 0.01, Spec: core.ST4}.Validate())
	// Output:
	// core: Tau must be positive
	// <nil>
}

// ExampleCompressField2D demonstrates sharing a transform between
// compression and ground-truth detection (required for byte-exact
// comparisons).
func ExampleCompressField2D() {
	f := field.NewField2D(8, 8)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			idx := f.Idx(i, j)
			f.U[idx] = float32(math.Sin(float64(i)))
			f.V[idx] = float32(math.Cos(float64(j)))
		}
	}
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := core.CompressField2D(f, tr, core.Options{Tau: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.Decompress2D(blob)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range f.U {
		worst = math.Max(worst, math.Abs(float64(f.U[i])-float64(dec.U[i])))
	}
	fmt.Println("within bound:", worst <= 0.05)
	// Output:
	// within bound: true
}
