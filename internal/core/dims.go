package core

import (
	"repro/internal/cp"
	"repro/internal/derive"
	"repro/internal/exact/filter"
	"repro/internal/field"
)

// dimOps is the per-dimension plug of the compression kernel: mesh
// topology (stencil neighbors, adjacent simplices), the exact
// critical-point detector, and the Ψ derivation call. A new dimension or
// mesh type implements this interface plus a Block/Encoder adapter; the
// sweep, prediction, speculation, and coding in kernel.go come for free.
type dimOps interface {
	// name is the telemetry scope of the dimension ("2d", "3d").
	name() string
	// numCells returns the simplex count of the extended mesh.
	numCells() int
	// cellVertices fills out with the vertex ids of cell c (ndim+1 of
	// them; the caller provides the buffer so the mesh lookup stays on
	// its stack).
	cellVertices(c int, out *[4]int)
	// vertexCells appends the cells incident to vertex v to buf.
	vertexCells(v int, buf []int) []int
	// makeDetector binds the exact detector to the kernel's working
	// arrays with the given global SoS vertex identity.
	makeDetector(gid func(v int) int) cellChecker
	// cellBound computes vertex vid's bound contribution of cell c:
	// min(Ψ, τ′) of Theorem 2 (or the unsound orientation-only ablation
	// variant), raised by the sign-uniformity relaxation when relax is
	// set. The whole per-cell computation sits behind one call so the
	// mesh lookup and the sign scans stay concrete and inlinable on the
	// kernel's hottest path; implementations must keep the relaxation
	// semantics of Algorithm 2 lines 11–15 (a component with uniform
	// strict sign over the cell may relax up to its own
	// SignPreservingBound).
	cellBound(vid, c int, tau int64, orientationOnly, relax bool) (cb int64, relaxed bool)
}

// cellChecker is the detector surface the kernel speculates against.
// Both cp.Detector2D and cp.Detector3D satisfy it. ContainsBatch is the
// cache-blocked bulk form used by the prepare() sweep: it evaluates the
// containment predicate for every cell whose mask bit is set, writing
// into out, amortizing fixed-point loads across a cell row.
type cellChecker interface {
	CellContains(c int) bool
	// CellContainsLocal is CellContains with batched filter-counter
	// accounting, for the speculation trial loop (one kernel, one
	// goroutine, one Local).
	CellContainsLocal(c int, loc *filter.Local) bool
	CellType(c int) cp.Type
	ContainsBatch(mask, out []bool)
}

// newDimOps builds the plug for one dimension over the kernel's extended
// working arrays (which the kernel mutates in place, so the detector and
// Ψ always see the current decompressed prefix). pred is the kernel's
// batched filter-counter block; the 3D Ψ derivation counts its
// certifications there (the 2D derivation is pure int64 and uncounted).
func newDimOps(ndim int, ext [3]int, comps [maxComps][]int64, pred *filter.Local) dimOps {
	if ndim == 2 {
		return &dim2{
			mesh: field.Mesh2D{NX: ext[0], NY: ext[1]},
			u:    comps[0], v: comps[1],
		}
	}
	return &dim3{
		mesh: field.Mesh3D{NX: ext[0], NY: ext[1], NZ: ext[2]},
		u:    comps[0], v: comps[1], w: comps[2],
		pred: pred,
	}
}

// dim2 is the triangle-mesh plug.
type dim2 struct {
	mesh field.Mesh2D
	u, v []int64
}

func (d *dim2) name() string  { return "2d" }
func (d *dim2) numCells() int { return d.mesh.NumCells() }

func (d *dim2) cellVertices(c int, out *[4]int) {
	vs := d.mesh.CellVertices(c)
	out[0], out[1], out[2] = vs[0], vs[1], vs[2]
}

func (d *dim2) vertexCells(v int, buf []int) []int {
	return d.mesh.VertexCells(v, buf)
}

func (d *dim2) makeDetector(gid func(v int) int) cellChecker {
	return &cp.Detector2D{Mesh: d.mesh, U: d.u, V: d.v, GlobalID: gid}
}

func (d *dim2) cellBound(vid, c int, tau int64, orientationOnly, relax bool) (cb int64, relaxed bool) {
	vs := d.mesh.CellVertices(c)
	var a, b int
	switch vid {
	case vs[0]:
		a, b = vs[1], vs[2]
	case vs[1]:
		a, b = vs[0], vs[2]
	default:
		a, b = vs[0], vs[1]
	}
	if orientationOnly {
		cb = derive.Psi2DOrientationOnly(d.u, d.v, a, b, vid)
		if cb > tau {
			cb = tau
		}
	} else {
		cb = derive.Psi2DCapped(d.u, d.v, a, b, vid, tau)
	}
	if relax {
		for _, z := range [2][]int64{d.u, d.v} {
			s := sgn(z[vs[0]])
			if s != 0 && sgn(z[vs[1]]) == s && sgn(z[vs[2]]) == s {
				if r := derive.SignPreservingBound(z[vid]); r > cb {
					cb = r
					relaxed = true
				}
			}
		}
	}
	return cb, relaxed
}

// dim3 is the Freudenthal tetrahedral-mesh plug.
type dim3 struct {
	mesh    field.Mesh3D
	u, v, w []int64
	pred    *filter.Local
}

func (d *dim3) name() string  { return "3d" }
func (d *dim3) numCells() int { return d.mesh.NumCells() }

func (d *dim3) cellVertices(c int, out *[4]int) {
	*out = d.mesh.CellVertices(c)
}

func (d *dim3) vertexCells(v int, buf []int) []int {
	return d.mesh.VertexCells(v, buf)
}

func (d *dim3) makeDetector(gid func(v int) int) cellChecker {
	return &cp.Detector3D{Mesh: d.mesh, U: d.u, V: d.v, W: d.w, GlobalID: gid}
}

func (d *dim3) cellBound(vid, c int, tau int64, orientationOnly, relax bool) (cb int64, relaxed bool) {
	vs := d.mesh.CellVertices(c)
	var o [3]int
	n := 0
	for _, v := range vs {
		if v != vid {
			o[n] = v
			n++
		}
	}
	if orientationOnly {
		cb = derive.Psi3DOrientationOnly(d.u, d.v, d.w, o[0], o[1], o[2], vid)
		if cb > tau {
			cb = tau
		}
	} else {
		// Capped form: the float filter certifies "Ψ ≥ τ′" for
		// candidates that cannot lower the min, skipping their exact
		// int128 evaluation; bit-identical to min(Psi3D, τ′).
		cb = derive.Psi3DCappedLocal(d.u, d.v, d.w, o[0], o[1], o[2], vid, tau, d.pred)
	}
	if relax {
		for _, z := range [3][]int64{d.u, d.v, d.w} {
			s := sgn(z[vs[0]])
			if s != 0 && sgn(z[vs[1]]) == s && sgn(z[vs[2]]) == s && sgn(z[vs[3]]) == s {
				if r := derive.SignPreservingBound(z[vid]); r > cb {
					cb = r
					relaxed = true
				}
			}
		}
	}
	return cb, relaxed
}
