package core
