package core

import (
	"strings"

	"repro/internal/telemetry"
)

// engineTel bundles the instrument handles of one encoder. Handles are
// resolved once at construction; when telemetry is disabled every field
// is nil and each instrumented event costs exactly one nil check.
//
// Metric names are per-dimension and per-speculation-target
// (core.<2d|3d>.<target>.<metric>) so a comparator run that exercises
// several targets keeps them apart; the bound-exponent histogram is
// per-dimension only, giving the overall tightness distribution of the
// stored bounds.
type engineTel struct {
	vertices    *telemetry.Counter // own vertices committed
	lossless    *telemetry.Counter // vertices stored with bound 0
	relaxed     *telemetry.Counter // sign-uniformity relaxation hits
	specTrials  *telemetry.Counter // speculation attempts
	specFails   *telemetry.Counter // rejected attempts (rollbacks)
	specCutoffs *telemetry.Counter // hard cut-offs to lossless
	literals    *telemetry.Counter // literal-stream escapes
	deriveNS    *telemetry.Counter // accumulated wall time in deriveBound
	boundExp    *telemetry.Histogram
	span        *telemetry.Span
	ownSpan     bool // span opened by the encoder; ended in Finish
}

// newEngineTel resolves the handles for one encoder; dim is "2d" or "3d".
func newEngineTel(opts Options, dim string) engineTel {
	c := opts.Tel
	if c == nil {
		return engineTel{}
	}
	// Lowercased so every metric key follows the subsystem.metric_name
	// convention the telemetryname lint analyzer enforces.
	p := "core." + dim + "." + strings.ToLower(opts.Spec.String()) + "."
	t := engineTel{
		vertices:    c.Counter(p + "vertices"),
		lossless:    c.Counter(p + "lossless"),
		relaxed:     c.Counter(p + "relaxed"),
		specTrials:  c.Counter(p + "spec_trials"),
		specFails:   c.Counter(p + "spec_fails"),
		specCutoffs: c.Counter(p + "spec_cutoffs"),
		literals:    c.Counter(p + "literal_escapes"),
		deriveNS:    c.Counter(p + "derive_ns"),
		boundExp:    c.Histogram("core." + dim + ".bound_exp_sym"),
		span:        opts.TelSpan,
	}
	if t.span == nil {
		t.span = c.Span("core.compress" + dim)
		t.ownSpan = true
	}
	return t
}

// stage opens a stage-scoped child span; nil-safe.
func (t *engineTel) stage(name string) *telemetry.Span {
	return t.span.Child(name)
}

// finish ends the encoder's root span if the encoder opened it.
func (t *engineTel) finish() {
	if t.ownSpan {
		t.span.End()
	}
}
