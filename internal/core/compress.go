package core

import (
	"repro/internal/field"
	"repro/internal/fixed"
)

// Compress2D compresses a 2D vector field with a transform fitted to the
// field itself. For distributed runs or when the transform must be shared
// (e.g. with ground-truth detection), use CompressField2D.
func Compress2D(f *field.Field2D, opts Options) ([]byte, fixed.Transform, error) {
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		return nil, tr, err
	}
	blob, err := CompressField2D(f, tr, opts)
	return blob, tr, err
}

// CompressField2D compresses a single-node 2D field with the given
// transform.
func CompressField2D(f *field.Field2D, tr fixed.Transform, opts Options) ([]byte, error) {
	blob, _, err := CompressField2DStats(f, tr, opts)
	return blob, err
}

// CompressField2DStats is CompressField2D returning the encoder's Stats
// alongside the blob, so callers can report speculation and relaxation
// behaviour without reaching into the encoder.
func CompressField2DStats(f *field.Field2D, tr fixed.Transform, opts Options) ([]byte, Stats, error) {
	enc, err := NewEncoder2D(Block2D{
		NX: f.NX, NY: f.NY, U: f.U, V: f.V,
		Transform: tr, Opts: opts,
	})
	if err != nil {
		return nil, Stats{}, err
	}
	enc.Run()
	blob, err := enc.Finish()
	enc.Close()
	return blob, enc.Stats(), err
}

// Compress3D compresses a 3D vector field with a fitted transform.
func Compress3D(f *field.Field3D, opts Options) ([]byte, fixed.Transform, error) {
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		return nil, tr, err
	}
	blob, err := CompressField3D(f, tr, opts)
	return blob, tr, err
}

// CompressField3D compresses a single-node 3D field with the given
// transform.
func CompressField3D(f *field.Field3D, tr fixed.Transform, opts Options) ([]byte, error) {
	blob, _, err := CompressField3DStats(f, tr, opts)
	return blob, err
}

// CompressField3DStats is CompressField3D returning the encoder's Stats
// alongside the blob.
func CompressField3DStats(f *field.Field3D, tr fixed.Transform, opts Options) ([]byte, Stats, error) {
	enc, err := NewEncoder3D(Block3D{
		NX: f.NX, NY: f.NY, NZ: f.NZ, U: f.U, V: f.V, W: f.W,
		Transform: tr, Opts: opts,
	})
	if err != nil {
		return nil, Stats{}, err
	}
	enc.Run()
	blob, err := enc.Finish()
	enc.Close()
	return blob, enc.Stats(), err
}
