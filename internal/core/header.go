package core

import (
	"encoding/binary"
	"errors"

	"repro/internal/encoder"
	"repro/internal/integrity"
)

// The self-describing block header, shared by the 2D and 3D streams: the
// encoder emits it from the kernel, the decoders and PeekHeader parse it.

// orderMode identifies the vertex visit order stored in the header.
type orderMode uint8

const (
	orderRaster   orderMode = 0 // plain raster scan
	orderTwoPhase orderMode = 1 // ratio-oriented: interior first, max planes last
)

const (
	magic = 0x5343 // "SC"
	// version1 blocks carry no payload checksum (the seed format);
	// version2 appends a CRC32C over the entropy-coded payload sections
	// to the header. The encoder emits version2; the decoder reads both.
	version1 = 1
	version2 = 2
)

// FormatVersion is the block format version the encoder emits, recorded
// in run manifests for provenance.
const FormatVersion = version2

// header is the self-describing prefix of a compressed block.
type header struct {
	NDim     int
	NX, NY   int
	NZ       int // 0 in 2D
	Shift    int // fixed-point transform exponent
	Tau      int64
	Spec     Speculation
	Order    orderMode
	HasGhost [6]bool // minX, maxX, minY, maxY, minZ, maxZ
	Border   bool    // lossless-border mode (informational)
	Temporal bool    // temporal prediction: decoder needs the previous frame
	// HasCRC reports whether the block stores PayloadCRC (version >= 2).
	// Version-1 blocks decode without integrity verification.
	HasCRC bool
	// PayloadCRC is the CRC32C computed by payloadChecksum: it covers
	// the marshaled header itself (with this field zeroed) followed by
	// the payload sections in section order, so a flipped bit in either
	// the header or the payload surfaces as an integrity error.
	PayloadCRC uint32
}

// payloadChecksum computes the version-2 block checksum over the header
// bytes (checksum field zeroed) and the given payload sections. The
// receiver is a value, so zeroing the field does not touch the caller's
// header.
func (h header) payloadChecksum(sections ...[]byte) uint32 {
	h.PayloadCRC = 0
	b := h.marshal() // the zeroed CRC field occupies the last 4 bytes
	parts := make([][]byte, 0, 1+len(sections))
	parts = append(parts, b[:len(b)-4])
	parts = append(parts, sections...)
	return integrity.Checksum(parts...)
}

func (h *header) marshal() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint16(b, magic)
	b = append(b, version2, byte(h.NDim))
	b = binary.AppendUvarint(b, uint64(h.NX))
	b = binary.AppendUvarint(b, uint64(h.NY))
	if h.NDim == 3 {
		b = binary.AppendUvarint(b, uint64(h.NZ))
	}
	b = binary.AppendVarint(b, int64(h.Shift))
	b = binary.AppendVarint(b, h.Tau)
	b = append(b, byte(h.Spec), byte(h.Order))
	var ghost byte
	for i, g := range h.HasGhost {
		if g {
			ghost |= 1 << i
		}
	}
	b = append(b, ghost)
	var flags byte
	if h.Border {
		flags |= 1
	}
	if h.Temporal {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, h.PayloadCRC)
	return b
}

var errHeader = errors.New("core: malformed header")

func (h *header) unmarshal(b []byte) error {
	if len(b) < 4 || binary.LittleEndian.Uint16(b) != magic {
		return errHeader
	}
	switch b[2] {
	case version1:
		h.HasCRC = false
	case version2:
		h.HasCRC = true
	default:
		return errHeader
	}
	h.NDim = int(b[3])
	if h.NDim != 2 && h.NDim != 3 {
		return errHeader
	}
	b = b[4:]
	read := func() (int, error) {
		v, k := binary.Uvarint(b)
		if k <= 0 {
			return 0, errHeader
		}
		b = b[k:]
		return int(v), nil
	}
	var err error
	if h.NX, err = read(); err != nil {
		return err
	}
	if h.NY, err = read(); err != nil {
		return err
	}
	if h.NDim == 3 {
		if h.NZ, err = read(); err != nil {
			return err
		}
	}
	// Sanity-bound dimensions so corrupt headers cannot cause overflowing
	// products or absurd allocations downstream.
	const maxDim = 1 << 28
	if h.NX < 2 || h.NY < 2 || h.NX > maxDim || h.NY > maxDim {
		return errHeader
	}
	if h.NDim == 3 && (h.NZ < 2 || h.NZ > maxDim) {
		return errHeader
	}
	sv, k := binary.Varint(b)
	if k <= 0 {
		return errHeader
	}
	h.Shift = int(sv)
	b = b[k:]
	tv, k := binary.Varint(b)
	if k <= 0 {
		return errHeader
	}
	h.Tau = tv
	b = b[k:]
	if len(b) < 4 {
		return errHeader
	}
	h.Spec = Speculation(b[0])
	h.Order = orderMode(b[1])
	for i := range h.HasGhost {
		h.HasGhost[i] = b[2]&(1<<i) != 0
	}
	h.Border = b[3]&1 != 0
	h.Temporal = b[3]&2 != 0
	if h.HasCRC {
		if len(b) < 8 {
			return errHeader
		}
		h.PayloadCRC = binary.LittleEndian.Uint32(b[4:])
	}
	return nil
}

// vertexCount returns NX·NY·NZ with overflow protection: a corrupt header
// whose per-dimension bounds pass individually must not overflow the
// product into a small (or negative) length that later slicing trusts.
func (h *header) vertexCount() (int, error) {
	const maxVerts = 1 << 40
	n := uint64(h.NX) * uint64(h.NY) // dims are each <= 2^28, no overflow
	if n > maxVerts {
		return 0, errHeader
	}
	if h.NDim == 3 {
		if n > maxVerts/uint64(h.NZ) { // overflow-safe: n*NZ would exceed maxVerts
			return 0, errHeader
		}
		n *= uint64(h.NZ)
	}
	return int(n), nil
}

// PeekHeader reports the dimensionality and sizes of a compressed block
// without decoding the payload. It serves both dimensions: NZ is 0 for a
// 2D block.
func PeekHeader(blob []byte) (ndim, nx, ny, nz int, err error) {
	// UnpackFirst inflates only the header section, so peeking a blob —
	// or a long-enough prefix of one, which is how the streaming
	// container reader sizes its plan without loading slabs — costs
	// O(header), not O(payload).
	sec, err := encoder.UnpackFirst(blob)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var h header
	if err := h.unmarshal(sec); err != nil {
		return 0, 0, 0, 0, err
	}
	return h.NDim, h.NX, h.NY, h.NZ, nil
}
