package core

import (
	"encoding/binary"
	"errors"

	"repro/internal/encoder"
)

// The self-describing block header, shared by the 2D and 3D streams: the
// encoder emits it from the kernel, the decoders and PeekHeader parse it.

// orderMode identifies the vertex visit order stored in the header.
type orderMode uint8

const (
	orderRaster   orderMode = 0 // plain raster scan
	orderTwoPhase orderMode = 1 // ratio-oriented: interior first, max planes last
)

const (
	magic   = 0x5343 // "SC"
	version = 1
)

// header is the self-describing prefix of a compressed block.
type header struct {
	NDim     int
	NX, NY   int
	NZ       int // 0 in 2D
	Shift    int // fixed-point transform exponent
	Tau      int64
	Spec     Speculation
	Order    orderMode
	HasGhost [6]bool // minX, maxX, minY, maxY, minZ, maxZ
	Border   bool    // lossless-border mode (informational)
	Temporal bool    // temporal prediction: decoder needs the previous frame
}

func (h *header) marshal() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint16(b, magic)
	b = append(b, version, byte(h.NDim))
	b = binary.AppendUvarint(b, uint64(h.NX))
	b = binary.AppendUvarint(b, uint64(h.NY))
	if h.NDim == 3 {
		b = binary.AppendUvarint(b, uint64(h.NZ))
	}
	b = binary.AppendVarint(b, int64(h.Shift))
	b = binary.AppendVarint(b, h.Tau)
	b = append(b, byte(h.Spec), byte(h.Order))
	var ghost byte
	for i, g := range h.HasGhost {
		if g {
			ghost |= 1 << i
		}
	}
	b = append(b, ghost)
	var flags byte
	if h.Border {
		flags |= 1
	}
	if h.Temporal {
		flags |= 2
	}
	b = append(b, flags)
	return b
}

var errHeader = errors.New("core: malformed header")

func (h *header) unmarshal(b []byte) error {
	if len(b) < 4 || binary.LittleEndian.Uint16(b) != magic || b[2] != version {
		return errHeader
	}
	h.NDim = int(b[3])
	if h.NDim != 2 && h.NDim != 3 {
		return errHeader
	}
	b = b[4:]
	read := func() (int, error) {
		v, k := binary.Uvarint(b)
		if k <= 0 {
			return 0, errHeader
		}
		b = b[k:]
		return int(v), nil
	}
	var err error
	if h.NX, err = read(); err != nil {
		return err
	}
	if h.NY, err = read(); err != nil {
		return err
	}
	if h.NDim == 3 {
		if h.NZ, err = read(); err != nil {
			return err
		}
	}
	// Sanity-bound dimensions so corrupt headers cannot cause overflowing
	// products or absurd allocations downstream.
	const maxDim = 1 << 28
	if h.NX < 2 || h.NY < 2 || h.NX > maxDim || h.NY > maxDim {
		return errHeader
	}
	if h.NDim == 3 && (h.NZ < 2 || h.NZ > maxDim) {
		return errHeader
	}
	sv, k := binary.Varint(b)
	if k <= 0 {
		return errHeader
	}
	h.Shift = int(sv)
	b = b[k:]
	tv, k := binary.Varint(b)
	if k <= 0 {
		return errHeader
	}
	h.Tau = tv
	b = b[k:]
	if len(b) < 4 {
		return errHeader
	}
	h.Spec = Speculation(b[0])
	h.Order = orderMode(b[1])
	for i := range h.HasGhost {
		h.HasGhost[i] = b[2]&(1<<i) != 0
	}
	h.Border = b[3]&1 != 0
	h.Temporal = b[3]&2 != 0
	return nil
}

// PeekHeader reports the dimensionality and sizes of a compressed block
// without decoding the payload. It serves both dimensions: NZ is 0 for a
// 2D block.
func PeekHeader(blob []byte) (ndim, nx, ny, nz int, err error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(sections) < 1 {
		return 0, 0, 0, 0, errors.New("core: empty container")
	}
	var h header
	if err := h.unmarshal(sections[0]); err != nil {
		return 0, 0, 0, 0, err
	}
	return h.NDim, h.NX, h.NY, h.NZ, nil
}
