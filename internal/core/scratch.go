package core

import "sync"

// kernelScratch carries the working buffers of one block compression.
// Every run of the sweep needs the same family of arrays (extended
// fixed-point components, progress masks, the cell maps, the output
// symbol streams), and a throughput-oriented caller — the shared-memory
// pipeline, the experiment sweeps, the per-step archive appends — builds
// kernels in a tight loop. Recycling the buffers through a sync.Pool
// keeps the steady-state allocation count of an encode near zero; the
// buffers only grow, so a pool hit on a same-shape block allocates
// nothing.
//
// Ownership: a kernel holds its scratch from newKernel until close().
// close() returns the buffers to the pool and nils the kernel's views so
// a use-after-close fails loudly instead of corrupting a pooled buffer.
type kernelScratch struct {
	comps [maxComps][]int64
	own   [maxComps][]int64
	prev  [maxComps][]int64
	row   []int64

	valid     []bool
	ownDone   []bool
	cellValid []bool
	cellEval  []bool
	cpCell    []bool
	cpAdj     []bool

	expSyms  []uint32
	codeSyms []uint32
	literals []byte
	cellBuf  []int
}

var scratchPool = sync.Pool{New: func() interface{} { return new(kernelScratch) }}

// growI64 returns buf resized to n and zeroed, reallocating only when the
// capacity is insufficient. Zeroing keeps pooled reuse bit-identical to
// the make([]int64, n) it replaces.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growBool is growI64 for the progress and cell masks (which rely on a
// false zero value).
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// close releases the kernel's scratch back to the pool. The kernel must
// not be used afterwards: the packed blob (finish) and any decompressed /
// border copies remain valid — they never alias scratch — but the kernel
// methods will panic on their nil'd views.
func (k *kernel) close() {
	k.pred.Flush()
	scr := k.scr
	if scr == nil {
		return
	}
	k.scr = nil
	// Hand the append-grown streams back so their capacity is kept.
	scr.expSyms = k.expSyms[:0]
	scr.codeSyms = k.codeSyms[:0]
	scr.literals = k.literals[:0]
	scr.cellBuf = k.cellBuf[:0]
	for c := 0; c < maxComps; c++ {
		k.comps[c], k.own[c], k.prev[c] = nil, nil, nil
	}
	k.valid, k.ownDone = nil, nil
	k.cellValid, k.cpCell, k.cpAdj = nil, nil, nil
	k.expSyms, k.codeSyms, k.literals, k.cellBuf = nil, nil, nil, nil
	scratchPool.Put(scr)
}
