package baselines

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/huffman"
	"repro/internal/safedim"
	"repro/internal/telemetry"
)

// FPZIPLike is a predictive compressor with precision-bit truncation
// ("-P" in the paper's tables): each float32 keeps its top Precision bits
// in a monotonic integer mapping, which behaves like a pointwise relative
// error control, and Lorenzo prediction residuals are entropy-coded with a
// leading-bit-class scheme.
type FPZIPLike struct {
	// Precision is the number of most-significant bits kept (1..32).
	Precision int
	// Tel, when non-nil, receives a span per compress/decompress call.
	Tel *telemetry.Collector
}

const fpMagic = 0x5A46 // "FZ"

// monotonic maps float32 bits to an order-preserving uint32 (sign-magnitude
// to biased), so truncation and integer prediction behave sensibly.
func monotonic(f float32) uint32 {
	b := math.Float32bits(f)
	if b>>31 != 0 {
		return ^b
	}
	return b | 0x80000000
}

func unmonotonic(m uint32) float32 {
	var b uint32
	if m>>31 != 0 {
		b = m &^ 0x80000000
	} else {
		b = ^m
	}
	return math.Float32frombits(b)
}

// Compress2D compresses a 2D field.
func (z FPZIPLike) Compress2D(f *field.Field2D) ([]byte, error) {
	defer z.Tel.Span("baselines.fpzip.compress2d").End()
	return z.compress(2, f.NX, f.NY, 1, f.Components())
}

// Compress3D compresses a 3D field.
func (z FPZIPLike) Compress3D(f *field.Field3D) ([]byte, error) {
	defer z.Tel.Span("baselines.fpzip.compress3d").End()
	return z.compress(3, f.NX, f.NY, f.NZ, f.Components())
}

// CompressedSizeOne compresses a single component over the given grid and
// returns the compressed size (per-component table columns).
func (z FPZIPLike) CompressedSizeOne(nx, ny, nz int, comp []float32) (int, error) {
	ndim := 3
	if nz <= 1 {
		ndim, nz = 2, 1
	}
	blob, err := z.compress(ndim, nx, ny, nz, [][]float32{comp})
	return len(blob), err
}

func (z FPZIPLike) compress(ndim, nx, ny, nz int, comps [][]float32) ([]byte, error) {
	if z.Precision < 1 || z.Precision > 32 {
		return nil, fmt.Errorf("baselines: precision %d out of range", z.Precision)
	}
	shift := uint(32 - z.Precision)
	n := safedim.MustProduct(nx, ny, nz)
	var classSyms []uint32
	var bits bitstream.Writer
	for _, c := range comps {
		rec := make([]int64, n) // truncated monotonic values, as int64
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := (k*ny+j)*nx + i
					trunc := int64(monotonic(c[idx]) >> shift)
					pred := lorenzoI(rec, nx, ny, i, j, k)
					resid := trunc - pred
					zz := zigzag64(resid)
					// Class = number of significant bits; the class is
					// Huffman-coded, the payload bits are raw.
					cls := uint(bitsLen(zz))
					classSyms = append(classSyms, uint32(cls))
					if cls > 1 {
						// The top bit of a cls-bit number is implicit.
						bits.WriteBits(zz&((1<<(cls-1))-1), cls-1)
					}
					rec[idx] = trunc
				}
			}
		}
	}
	head := szHeader(fpMagic, ndim, nx, ny, nz)
	head = append(head, byte(z.Precision))
	return encoder.Pack(head, huffman.Compress(classSyms), bits.Bytes())
}

// zigzag64 maps a signed residual to an unsigned integer with small
// magnitudes first; residuals in the monotonic domain can exceed 32 bits,
// so the package-local 64-bit variant is used instead of huffman.Zigzag.
func zigzag64(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag64(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// bitsLen returns the bit length of v (0 for 0).
func bitsLen(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// Decompress2D reconstructs a 2D field.
func (z FPZIPLike) Decompress2D(blob []byte) (*field.Field2D, error) {
	defer z.Tel.Span("baselines.fpzip.decompress2d").End()
	ndim, nx, ny, _, comps, err := z.decompress(blob)
	if err != nil {
		return nil, err
	}
	if ndim != 2 {
		return nil, errors.New("baselines: not a 2D stream")
	}
	f := field.NewField2D(nx, ny)
	copy(f.U, comps[0])
	copy(f.V, comps[1])
	return f, nil
}

// Decompress3D reconstructs a 3D field.
func (z FPZIPLike) Decompress3D(blob []byte) (*field.Field3D, error) {
	defer z.Tel.Span("baselines.fpzip.decompress3d").End()
	ndim, nx, ny, nz, comps, err := z.decompress(blob)
	if err != nil {
		return nil, err
	}
	if ndim != 3 {
		return nil, errors.New("baselines: not a 3D stream")
	}
	f := field.NewField3D(nx, ny, nz)
	copy(f.U, comps[0])
	copy(f.V, comps[1])
	copy(f.W, comps[2])
	return f, nil
}

func (z FPZIPLike) decompress(blob []byte) (ndim, nx, ny, nz int, comps [][]float32, err error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if len(sections) != 3 {
		return 0, 0, 0, 0, nil, errors.New("baselines: wrong section count")
	}
	head := sections[0]
	ndim, nx, ny, nz, head, err = szReadHeader(head, fpMagic)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if len(head) < 1 {
		return 0, 0, 0, 0, nil, errors.New("baselines: truncated header")
	}
	prec := int(head[0])
	shift := uint(32 - prec)
	classSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	bits := bitstream.NewReader(sections[2])
	n, err := szVertexCount(nx, ny, nz)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	ncomp := ndim
	if len(classSyms) != n*ncomp {
		return 0, 0, 0, 0, nil, errors.New("baselines: stream length mismatch")
	}
	comps = make([][]float32, ncomp)
	pos := 0
	for c := 0; c < ncomp; c++ {
		rec := make([]int64, n)
		out := make([]float32, n)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := (k*ny+j)*nx + i
					cls := uint(classSyms[pos])
					pos++
					// Valid residual classes stay below ~37 bits; reject
					// corrupt symbols before they reach the bit reader's
					// width limit.
					if cls > 48 {
						return 0, 0, 0, 0, nil, errors.New("baselines: corrupt residual class")
					}
					var zz uint64
					if cls == 1 {
						zz = 1
					} else if cls > 1 {
						low, err := bits.ReadBits(cls - 1)
						if err != nil {
							return 0, 0, 0, 0, nil, err
						}
						zz = low | 1<<(cls-1)
					}
					resid := unzigzag64(zz)
					pred := lorenzoI(rec, nx, ny, i, j, k)
					trunc := pred + resid
					rec[idx] = trunc
					out[idx] = unmonotonic(uint32(trunc) << shift)
				}
			}
		}
		comps[c] = out
	}
	return ndim, nx, ny, nz, comps, nil
}

// lorenzoI is the integer Lorenzo predictor used in the monotonic domain.
func lorenzoI(rec []int64, nx, ny, i, j, k int) int64 {
	sx, sy, sz := 1, nx, nx*ny
	idx := (k*ny+j)*nx + i
	switch {
	case i > 0 && j > 0 && k > 0:
		return rec[idx-sx] + rec[idx-sy] + rec[idx-sz] -
			rec[idx-sx-sy] - rec[idx-sx-sz] - rec[idx-sy-sz] +
			rec[idx-sx-sy-sz]
	case i > 0 && j > 0:
		return rec[idx-sx] + rec[idx-sy] - rec[idx-sx-sy]
	case i > 0 && k > 0:
		return rec[idx-sx] + rec[idx-sz] - rec[idx-sx-sz]
	case j > 0 && k > 0:
		return rec[idx-sy] + rec[idx-sz] - rec[idx-sy-sz]
	case i > 0:
		return rec[idx-sx]
	case j > 0:
		return rec[idx-sy]
	case k > 0:
		return rec[idx-sz]
	default:
		return 0
	}
}
