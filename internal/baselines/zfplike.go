package baselines

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/telemetry"
)

// ZFPLike is a transform-based compressor working on 4^d blocks: block
// floating point (one shared exponent per block), an invertible integer
// wavelet lift along each axis, and embedded bit-plane coding from the
// most significant plane down.
//
// Two modes mirror the paper's tables: fixed precision ("-P", keep
// Precision planes of every block) and fixed accuracy ("-A", keep planes
// down to the absolute tolerance).
type ZFPLike struct {
	// Precision is the number of bit planes kept per block (1..30).
	// Ignored when Accuracy > 0.
	Precision int
	// Accuracy, when positive, selects fixed-accuracy mode with the given
	// absolute error tolerance.
	Accuracy float64
	// Tel, when non-nil, receives a span per compress/decompress call.
	Tel *telemetry.Collector
}

const (
	zfpMagic = 0x465A // "ZF"
	// blockQ is the fixed-point precision inside a block: values are
	// scaled to ~30 significant bits below the block exponent.
	blockQ = 30
	// liftHeadroom is the bit growth allowance of the wavelet lift (the
	// difference coefficients grow by up to one bit per lifted axis).
	liftHeadroom = 4
)

// Compress2D compresses a 2D field.
func (z ZFPLike) Compress2D(f *field.Field2D) ([]byte, error) {
	defer z.Tel.Span("baselines.zfp.compress2d").End()
	return z.compress(2, f.NX, f.NY, 1, f.Components())
}

// Compress3D compresses a 3D field.
func (z ZFPLike) Compress3D(f *field.Field3D) ([]byte, error) {
	defer z.Tel.Span("baselines.zfp.compress3d").End()
	return z.compress(3, f.NX, f.NY, f.NZ, f.Components())
}

// CompressedSizeOne compresses a single component over the given grid and
// returns the compressed size (per-component table columns).
func (z ZFPLike) CompressedSizeOne(nx, ny, nz int, comp []float32) (int, error) {
	ndim := 3
	if nz <= 1 {
		ndim, nz = 2, 1
	}
	blob, err := z.compress(ndim, nx, ny, nz, [][]float32{comp})
	return len(blob), err
}

func (z ZFPLike) compress(ndim, nx, ny, nz int, comps [][]float32) ([]byte, error) {
	if z.Accuracy <= 0 && (z.Precision < 1 || z.Precision > blockQ) {
		return nil, fmt.Errorf("baselines: zfp precision %d out of range", z.Precision)
	}
	const bs = 4 // block side
	bx, by, bz := ceilDiv(nx, bs), ceilDiv(ny, bs), 1
	if ndim == 3 {
		bz = ceilDiv(nz, bs)
	}
	blockLen := bs * bs
	if ndim == 3 {
		blockLen = bs * bs * bs
	}
	var bits bitstream.Writer
	block := make([]int64, blockLen)
	vals := make([]float64, blockLen)
	for _, c := range comps {
		for kb := 0; kb < bz; kb++ {
			for jb := 0; jb < by; jb++ {
				for ib := 0; ib < bx; ib++ {
					gatherBlock(c, vals, nx, ny, nz, ib*bs, jb*bs, kb*bs, bs, ndim)
					e := blockExponent(vals)
					// 7-bit biased exponent (−63..64).
					bits.WriteBits(uint64(e+63), 7)
					scale := math.Ldexp(1, blockQ-e)
					for i, v := range vals {
						block[i] = int64(math.Round(v * scale))
					}
					forwardLift(block, bs, ndim)
					planes := z.planeCount(e)
					encodeBlock(&bits, block, planes)
				}
			}
		}
	}
	head := szHeader(zfpMagic, ndim, nx, ny, nz)
	head = append(head, byte(z.Precision))
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(z.Accuracy))
	return encoder.Pack(head, bits.Bytes())
}

// planeCount returns how many bit planes to keep for a block with
// exponent e.
func (z ZFPLike) planeCount(e int) int {
	if z.Accuracy <= 0 {
		return z.Precision
	}
	// Keep planes down to the tolerance: plane p carries value magnitude
	// 2^(e + liftHeadroom - 1 - p); keep planes while that stays at or
	// above the tolerance exponent.
	tolExp := int(math.Floor(math.Log2(z.Accuracy)))
	planes := e + liftHeadroom - 1 - tolExp
	if planes < 0 {
		planes = 0
	}
	if planes > blockQ {
		planes = blockQ
	}
	return planes
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// gatherBlock copies (with edge clamping) a 4^d block into vals.
func gatherBlock(c []float32, vals []float64, nx, ny, nz, x0, y0, z0, bs, ndim int) {
	zs := bs
	if ndim == 2 {
		zs = 1
	}
	p := 0
	for dz := 0; dz < zs; dz++ {
		k := min(z0+dz, maxInt(nz-1, 0))
		for dy := 0; dy < bs; dy++ {
			j := min(y0+dy, ny-1)
			for dx := 0; dx < bs; dx++ {
				i := min(x0+dx, nx-1)
				vals[p] = float64(c[(k*ny+j)*nx+i])
				p++
			}
		}
	}
}

func scatterBlock(c []float32, vals []float64, nx, ny, nz, x0, y0, z0, bs, ndim int) {
	zs := bs
	if ndim == 2 {
		zs = 1
	}
	p := 0
	for dz := 0; dz < zs; dz++ {
		k := z0 + dz
		for dy := 0; dy < bs; dy++ {
			j := y0 + dy
			for dx := 0; dx < bs; dx++ {
				i := x0 + dx
				if i < nx && j < ny && (ndim == 2 || k < nz) {
					kk := k
					if ndim == 2 {
						kk = 0
					}
					c[(kk*ny+j)*nx+i] = float32(vals[p])
				}
				p++
			}
		}
	}
}

func blockExponent(vals []float64) int {
	m := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 {
		return -63
	}
	e := int(math.Ceil(math.Log2(m)))
	if e < -63 {
		e = -63
	}
	if e > 64 {
		e = 64
	}
	return e
}

// sLift is the forward S-transform on a pair: s = ⌊(a+b)/2⌋, d = a−b.
func sLift(a, b int64) (s, d int64) {
	d = a - b
	s = b + (d >> 1)
	return s, d
}

func sUnlift(s, d int64) (a, b int64) {
	b = s - (d >> 1)
	a = b + d
	return a, b
}

// forwardLift applies a two-level Haar-style lift along each axis of the
// 4^d block (the decorrelating transform).
func forwardLift(block []int64, bs, ndim int) {
	dims := ndim
	strides := [3]int{1, bs, bs * bs}
	counts := [3]int{bs, bs, bs}
	total := len(block)
	for d := 0; d < dims; d++ {
		st := strides[d]
		n := counts[d]
		// Iterate over all lines along axis d.
		for base := 0; base < total; base++ {
			if (base/st)%n != 0 {
				continue
			}
			// Line starts at base with stride st.
			lift4(block, base, st)
		}
	}
}

func inverseLift(block []int64, bs, ndim int) {
	dims := ndim
	strides := [3]int{1, bs, bs * bs}
	counts := [3]int{bs, bs, bs}
	total := len(block)
	for d := dims - 1; d >= 0; d-- {
		st := strides[d]
		n := counts[d]
		for base := 0; base < total; base++ {
			if (base/st)%n != 0 {
				continue
			}
			unlift4(block, base, st)
		}
	}
}

// lift4 transforms the 4 elements (base, base+st, base+2st, base+3st):
// level 1 pairs (0,1) and (2,3), level 2 on the two averages. Layout
// afterwards: [ss, ds, d0, d1].
func lift4(b []int64, base, st int) {
	a0, a1, a2, a3 := b[base], b[base+st], b[base+2*st], b[base+3*st]
	s0, d0 := sLift(a0, a1)
	s1, d1 := sLift(a2, a3)
	ss, ds := sLift(s0, s1)
	b[base], b[base+st], b[base+2*st], b[base+3*st] = ss, ds, d0, d1
}

func unlift4(b []int64, base, st int) {
	ss, ds, d0, d1 := b[base], b[base+st], b[base+2*st], b[base+3*st]
	s0, s1 := sUnlift(ss, ds)
	a0, a1 := sUnlift(s0, d0)
	a2, a3 := sUnlift(s1, d1)
	b[base], b[base+st], b[base+2*st], b[base+3*st] = a0, a1, a2, a3
}

// encodeBlock writes `planes` bit planes of the block with embedded
// significance coding: per plane, one magnitude bit per coefficient, plus
// the sign bit the first time a coefficient becomes significant.
func encodeBlock(w *bitstream.Writer, block []int64, planes int) {
	n := len(block)
	signif := make([]bool, n)
	for p := 0; p < planes; p++ {
		bit := uint(blockQ + liftHeadroom - 1 - p)
		for i := 0; i < n; i++ {
			v := block[i]
			mag := uint64(v)
			if v < 0 {
				mag = uint64(-v)
			}
			b := (mag >> bit) & 1
			w.WriteBits(b, 1)
			if b == 1 && !signif[i] {
				signif[i] = true
				if v < 0 {
					w.WriteBits(1, 1)
				} else {
					w.WriteBits(0, 1)
				}
			}
		}
	}
}

func decodeBlock(r *bitstream.Reader, block []int64, planes int) error {
	n := len(block)
	mags := make([]uint64, n)
	neg := make([]bool, n)
	signif := make([]bool, n)
	for p := 0; p < planes; p++ {
		bit := uint(blockQ + liftHeadroom - 1 - p)
		for i := 0; i < n; i++ {
			b, err := r.ReadBits(1)
			if err != nil {
				return err
			}
			if b == 1 {
				mags[i] |= 1 << bit
				if !signif[i] {
					signif[i] = true
					s, err := r.ReadBits(1)
					if err != nil {
						return err
					}
					neg[i] = s == 1
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		v := int64(mags[i])
		if planes > 0 && planes < blockQ+liftHeadroom {
			// Reconstruct to the middle of the uncertainty interval.
			v |= 1 << uint(blockQ+liftHeadroom-1-planes)
			if mags[i] == 0 && !signif[i] {
				v = 0
			}
		}
		if neg[i] {
			v = -v
		}
		block[i] = v
	}
	return nil
}

// Decompress2D reconstructs a 2D field.
func (z ZFPLike) Decompress2D(blob []byte) (*field.Field2D, error) {
	defer z.Tel.Span("baselines.zfp.decompress2d").End()
	ndim, nx, ny, _, comps, err := z.decompress(blob)
	if err != nil {
		return nil, err
	}
	if ndim != 2 {
		return nil, errors.New("baselines: not a 2D stream")
	}
	f := field.NewField2D(nx, ny)
	copy(f.U, comps[0])
	copy(f.V, comps[1])
	return f, nil
}

// Decompress3D reconstructs a 3D field.
func (z ZFPLike) Decompress3D(blob []byte) (*field.Field3D, error) {
	defer z.Tel.Span("baselines.zfp.decompress3d").End()
	ndim, nx, ny, nz, comps, err := z.decompress(blob)
	if err != nil {
		return nil, err
	}
	if ndim != 3 {
		return nil, errors.New("baselines: not a 3D stream")
	}
	f := field.NewField3D(nx, ny, nz)
	copy(f.U, comps[0])
	copy(f.V, comps[1])
	copy(f.W, comps[2])
	return f, nil
}

func (z ZFPLike) decompress(blob []byte) (ndim, nx, ny, nz int, comps [][]float32, err error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if len(sections) != 2 {
		return 0, 0, 0, 0, nil, errors.New("baselines: wrong section count")
	}
	head := sections[0]
	ndim, nx, ny, nz, head, err = szReadHeader(head, zfpMagic)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if len(head) < 9 {
		return 0, 0, 0, 0, nil, errors.New("baselines: truncated header")
	}
	zz := ZFPLike{Precision: int(head[0]), Accuracy: math.Float64frombits(binary.LittleEndian.Uint64(head[1:]))}
	bits := bitstream.NewReader(sections[1])
	const bs = 4
	if nx < 1 || ny < 1 || (ndim == 3 && nz < 1) {
		return 0, 0, 0, 0, nil, errors.New("baselines: bad dims")
	}
	bx, by, bz := ceilDiv(nx, bs), ceilDiv(ny, bs), 1
	if ndim == 3 {
		bz = ceilDiv(nz, bs)
	}
	// Every block costs at least its 7-bit exponent; reject dimension
	// claims the bit stream cannot possibly back (corrupt headers would
	// otherwise trigger huge allocations).
	if int64(bx)*int64(by)*int64(bz)*7 > int64(len(sections[1]))*8+8 {
		return 0, 0, 0, 0, nil, errors.New("baselines: dims exceed stream capacity")
	}
	blockLen := bs * bs
	if ndim == 3 {
		blockLen = bs * bs * bs
	}
	ncomp := ndim
	n, err := szVertexCount(nx, ny, nz)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	comps = make([][]float32, ncomp)
	block := make([]int64, blockLen)
	vals := make([]float64, blockLen)
	for c := 0; c < ncomp; c++ {
		out := make([]float32, n)
		for kb := 0; kb < bz; kb++ {
			for jb := 0; jb < by; jb++ {
				for ib := 0; ib < bx; ib++ {
					eb, err := bits.ReadBits(7)
					if err != nil {
						return 0, 0, 0, 0, nil, err
					}
					e := int(eb) - 63
					planes := zz.planeCount(e)
					if err := decodeBlock(bits, block, planes); err != nil {
						return 0, 0, 0, 0, nil, err
					}
					inverseLift(block, bs, ndim)
					scale := math.Ldexp(1, e-blockQ)
					for i, v := range block {
						vals[i] = float64(v) * scale
					}
					scatterBlock(out, vals, nx, ny, nz, ib*bs, jb*bs, kb*bs, bs, ndim)
				}
			}
		}
		comps[c] = out
	}
	return ndim, nx, ny, nz, comps, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
