package baselines

import "testing"

// CompressedSizeOne feeds the per-component ratio columns of the paper's
// tables; the single-component size must be plausible relative to the
// full multi-component blob.
func TestCompressedSizeOne(t *testing.T) {
	f2 := smooth2D(70, 32, 24)
	f3 := smooth3D(71, 10)

	t.Run("szlike", func(t *testing.T) {
		sz := SZLike{Abs: 0.01}
		full, err := sz.Compress2D(f2)
		if err != nil {
			t.Fatal(err)
		}
		one, err := sz.CompressedSizeOne(f2.NX, f2.NY, 1, f2.U)
		if err != nil {
			t.Fatal(err)
		}
		if one <= 0 || one >= len(full) {
			t.Errorf("single-component size %d vs full %d", one, len(full))
		}
		if _, err := sz.CompressedSizeOne(f3.NX, f3.NY, f3.NZ, f3.U); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("zfplike", func(t *testing.T) {
		z := ZFPLike{Accuracy: 0.01}
		full, err := z.Compress2D(f2)
		if err != nil {
			t.Fatal(err)
		}
		one, err := z.CompressedSizeOne(f2.NX, f2.NY, 1, f2.U)
		if err != nil {
			t.Fatal(err)
		}
		if one <= 0 || one >= len(full) {
			t.Errorf("single-component size %d vs full %d", one, len(full))
		}
	})
	t.Run("fpziplike", func(t *testing.T) {
		z := FPZIPLike{Precision: 14}
		full, err := z.Compress2D(f2)
		if err != nil {
			t.Fatal(err)
		}
		one, err := z.CompressedSizeOne(f2.NX, f2.NY, 1, f2.U)
		if err != nil {
			t.Fatal(err)
		}
		if one <= 0 || one >= len(full) {
			t.Errorf("single-component size %d vs full %d", one, len(full))
		}
		if _, err := z.CompressedSizeOne(f3.NX, f3.NY, f3.NZ, f3.W); err != nil {
			t.Fatal(err)
		}
	})
}
