package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
)

func smooth2D(seed int64, nx, ny int) *field.Field2D {
	rng := rand.New(rand.NewSource(seed))
	f := field.NewField2D(nx, ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x := 4 * math.Pi * float64(i) / float64(nx)
			y := 4 * math.Pi * float64(j) / float64(ny)
			idx := f.Idx(i, j)
			f.U[idx] = float32(math.Sin(x)*math.Cos(y) + rng.NormFloat64()*1e-3)
			f.V[idx] = float32(math.Cos(x)*math.Sin(y) + rng.NormFloat64()*1e-3)
		}
	}
	return f
}

func smooth3D(seed int64, n int) *field.Field3D {
	rng := rand.New(rand.NewSource(seed))
	f := field.NewField3D(n, n, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := 2 * math.Pi * float64(i) / float64(n)
				y := 2 * math.Pi * float64(j) / float64(n)
				z := 2 * math.Pi * float64(k) / float64(n)
				idx := f.Idx(i, j, k)
				f.U[idx] = float32(math.Sin(x)*math.Cos(y) + rng.NormFloat64()*1e-3)
				f.V[idx] = float32(math.Cos(y)*math.Sin(z) + rng.NormFloat64()*1e-3)
				f.W[idx] = float32(math.Sin(z)*math.Cos(x) + rng.NormFloat64()*1e-3)
			}
		}
	}
	return f
}

func maxErr2(a, b *field.Field2D) float64 {
	m := 0.0
	for i := range a.U {
		m = math.Max(m, math.Abs(float64(a.U[i])-float64(b.U[i])))
		m = math.Max(m, math.Abs(float64(a.V[i])-float64(b.V[i])))
	}
	return m
}

func TestSZLikeRoundTrip2D(t *testing.T) {
	f := smooth2D(1, 40, 32)
	const abs = 0.01
	blob, err := SZLike{Abs: abs}.Compress2D(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SZLike{}.Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr2(f, g); e > abs {
		t.Errorf("error %v exceeds bound %v", e, abs)
	}
	if len(blob) >= 4*2*len(f.U) {
		t.Error("no compression achieved")
	}
}

func TestSZLikeRoundTrip3D(t *testing.T) {
	f := smooth3D(2, 12)
	const abs = 0.02
	blob, err := SZLike{Abs: abs}.Compress3D(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SZLike{}.Decompress3D(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.U {
		for _, p := range [][2]float32{{f.U[i], g.U[i]}, {f.V[i], g.V[i]}, {f.W[i], g.W[i]}} {
			if math.Abs(float64(p[0])-float64(p[1])) > abs {
				t.Fatalf("error bound violated at %d", i)
			}
		}
	}
}

func TestSZLikeRejectsBadBound(t *testing.T) {
	f := smooth2D(3, 8, 8)
	if _, err := (SZLike{}).Compress2D(f); err == nil {
		t.Error("zero bound must be rejected")
	}
}

func TestFPZIPLikeRoundTrip2D(t *testing.T) {
	f := smooth2D(4, 40, 32)
	for _, prec := range []int{12, 16, 24} {
		blob, err := FPZIPLike{Precision: prec}.Compress2D(f)
		if err != nil {
			t.Fatal(err)
		}
		g, err := FPZIPLike{}.Decompress2D(blob)
		if err != nil {
			t.Fatal(err)
		}
		// Precision truncation gives a relative-like error of roughly
		// 2^-(prec-9) of the magnitude.
		relBound := math.Pow(2, float64(-(prec - 10)))
		for i := range f.U {
			d := math.Abs(float64(f.U[i]) - float64(g.U[i]))
			lim := relBound*math.Abs(float64(f.U[i])) + 1e-6
			if d > lim {
				t.Fatalf("prec %d: error %v exceeds %v at %d (val %v)", prec, d, lim, i, f.U[i])
			}
		}
	}
}

func TestFPZIPLikeLossless32(t *testing.T) {
	f := smooth2D(5, 16, 16)
	blob, err := FPZIPLike{Precision: 32}.Compress2D(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FPZIPLike{}.Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.U {
		if f.U[i] != g.U[i] || f.V[i] != g.V[i] {
			t.Fatalf("precision 32 must be lossless (at %d)", i)
		}
	}
}

func TestFPZIPLikeHigherPrecisionBiggerOutput(t *testing.T) {
	f := smooth2D(6, 48, 48)
	a, _ := FPZIPLike{Precision: 10}.Compress2D(f)
	b, _ := FPZIPLike{Precision: 24}.Compress2D(f)
	if len(a) >= len(b) {
		t.Errorf("P10 (%d) should be smaller than P24 (%d)", len(a), len(b))
	}
}

func TestFPZIPLikeRoundTrip3D(t *testing.T) {
	f := smooth3D(7, 10)
	blob, err := FPZIPLike{Precision: 16}.Compress3D(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (FPZIPLike{}).Decompress3D(blob); err != nil {
		t.Fatal(err)
	}
}

func TestFPZIPLikeRejectsBadPrecision(t *testing.T) {
	f := smooth2D(8, 8, 8)
	for _, p := range []int{0, 33, -1} {
		if _, err := (FPZIPLike{Precision: p}).Compress2D(f); err == nil {
			t.Errorf("precision %d must be rejected", p)
		}
	}
}

func TestMonotonicMapping(t *testing.T) {
	vals := []float32{-100, -1, -0.001, 0, 0.001, 1, 100}
	for i := 1; i < len(vals); i++ {
		if monotonic(vals[i-1]) >= monotonic(vals[i]) {
			t.Errorf("monotonic mapping not increasing at %v", vals[i])
		}
	}
	for _, v := range vals {
		if unmonotonic(monotonic(v)) != v {
			t.Errorf("unmonotonic(monotonic(%v)) != %v", v, v)
		}
	}
}

func TestZFPLikeAccuracyMode2D(t *testing.T) {
	f := smooth2D(9, 40, 32)
	const tol = 0.01
	blob, err := ZFPLike{Accuracy: tol}.Compress2D(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ZFPLike{}.Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr2(f, g); e > 4*tol {
		t.Errorf("accuracy-mode error %v far exceeds tolerance %v", e, tol)
	}
}

func TestZFPLikePrecisionMode2D(t *testing.T) {
	f := smooth2D(10, 40, 32)
	lo, _ := ZFPLike{Precision: 6}.Compress2D(f)
	hi, _ := ZFPLike{Precision: 20}.Compress2D(f)
	if len(lo) >= len(hi) {
		t.Errorf("P6 (%d bytes) should be smaller than P20 (%d bytes)", len(lo), len(hi))
	}
	g, err := ZFPLike{}.Decompress2D(hi)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr2(f, g); e > 1e-3 {
		t.Errorf("high precision error %v too large", e)
	}
}

func TestZFPLikeRoundTrip3D(t *testing.T) {
	f := smooth3D(11, 12)
	blob, err := ZFPLike{Accuracy: 0.02}.Compress3D(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ZFPLike{}.Decompress3D(blob)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range f.U {
		worst = math.Max(worst, math.Abs(float64(f.U[i])-float64(g.U[i])))
	}
	if worst > 8*0.02 {
		t.Errorf("3D accuracy error %v too large", worst)
	}
}

func TestZFPLikeRejectsBadPrecision(t *testing.T) {
	f := smooth2D(12, 8, 8)
	if _, err := (ZFPLike{Precision: 0}).Compress2D(f); err == nil {
		t.Error("precision 0 must be rejected")
	}
}

func TestLiftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 16
		if trial%2 == 1 {
			n = 64
		}
		ndim := 2
		if n == 64 {
			ndim = 3
		}
		block := make([]int64, n)
		orig := make([]int64, n)
		for i := range block {
			block[i] = rng.Int63n(1<<31) - 1<<30
			orig[i] = block[i]
		}
		forwardLift(block, 4, ndim)
		inverseLift(block, 4, ndim)
		for i := range block {
			if block[i] != orig[i] {
				t.Fatalf("lift not invertible at %d (ndim %d)", i, ndim)
			}
		}
	}
}

func TestSLiftPairRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10000; trial++ {
		a := rng.Int63n(1<<40) - 1<<39
		b := rng.Int63n(1<<40) - 1<<39
		s, d := sLift(a, b)
		a2, b2 := sUnlift(s, d)
		if a2 != a || b2 != b {
			t.Fatalf("sLift round trip failed: %d %d", a, b)
		}
	}
}

func TestNonMultipleOfFourDims(t *testing.T) {
	f := smooth2D(15, 39, 31) // not multiples of 4
	blob, err := ZFPLike{Accuracy: 0.01}.Compress2D(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ZFPLike{}.Decompress2D(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 39 || g.NY != 31 {
		t.Fatalf("dims %dx%d", g.NX, g.NY)
	}
}

func TestDecompressTypeMismatch(t *testing.T) {
	f := smooth2D(16, 16, 16)
	blob, _ := SZLike{Abs: 0.01}.Compress2D(f)
	if _, err := (SZLike{}).Decompress3D(blob); err == nil {
		t.Error("2D blob as 3D must fail")
	}
	if _, err := (ZFPLike{}).Decompress2D(blob); err == nil {
		t.Error("SZ blob as ZFP must fail")
	}
	if _, err := (FPZIPLike{}).Decompress2D(blob); err == nil {
		t.Error("SZ blob as FPZIP must fail")
	}
}

func BenchmarkSZLike2D(b *testing.B) {
	f := smooth2D(17, 64, 64)
	b.SetBytes(int64(len(f.U)+len(f.V)) * 4)
	for i := 0; i < b.N; i++ {
		if _, err := (SZLike{Abs: 0.01}).Compress2D(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZFPLike2D(b *testing.B) {
	f := smooth2D(18, 64, 64)
	b.SetBytes(int64(len(f.U)+len(f.V)) * 4)
	for i := 0; i < b.N; i++ {
		if _, err := (ZFPLike{Accuracy: 0.01}).Compress2D(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPZIPLike2D(b *testing.B) {
	f := smooth2D(19, 64, 64)
	b.SetBytes(int64(len(f.U)+len(f.V)) * 4)
	for i := 0; i < b.N; i++ {
		if _, err := (FPZIPLike{Precision: 16}).Compress2D(f); err != nil {
			b.Fatal(err)
		}
	}
}
