// Package baselines provides simplified from-scratch reimplementations of
// the three generic error-bounded lossy compressors the paper compares
// against: SZ3 (prediction + absolute error bound), ZFP (block transform +
// bit-plane coding, precision and accuracy modes), and FPZIP (predictive
// coding with precision-bit truncation, i.e. pointwise-relative-like error
// control).
//
// All three are topology-agnostic: they control pointwise error but know
// nothing about critical points, so at compression ratios comparable to
// the proposed method they produce large numbers of false critical points
// — the behaviour Tables V–VII demonstrate.
package baselines

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/huffman"
	"repro/internal/quantizer"
	"repro/internal/safedim"
	"repro/internal/telemetry"
)

// SZLike is a prediction-based compressor with a global absolute error
// bound (the "-A" mode of SZ3 in the paper's tables).
type SZLike struct {
	// Abs is the absolute error bound.
	Abs float64
	// Tel, when non-nil, receives a span per compress/decompress call.
	Tel *telemetry.Collector
}

const szMagic = 0x5A53 // "SZ"

// Compress2D compresses a 2D field.
func (s SZLike) Compress2D(f *field.Field2D) ([]byte, error) {
	defer s.Tel.Span("baselines.sz.compress2d").End()
	return szCompress(s.Abs, 2, f.NX, f.NY, 1, f.Components())
}

// Compress3D compresses a 3D field.
func (s SZLike) Compress3D(f *field.Field3D) ([]byte, error) {
	defer s.Tel.Span("baselines.sz.compress3d").End()
	return szCompress(s.Abs, 3, f.NX, f.NY, f.NZ, f.Components())
}

// CompressedSizeOne compresses a single component over the given grid and
// returns the compressed size — the per-component ratio columns (CR_u,
// CR_v, CR_w) of the paper's tables.
func (s SZLike) CompressedSizeOne(nx, ny, nz int, comp []float32) (int, error) {
	ndim := 3
	if nz <= 1 {
		ndim, nz = 2, 1
	}
	blob, err := szCompress(s.Abs, ndim, nx, ny, nz, [][]float32{comp})
	return len(blob), err
}

func szCompress(abs float64, ndim, nx, ny, nz int, comps [][]float32) ([]byte, error) {
	if abs <= 0 {
		return nil, errors.New("baselines: Abs must be positive")
	}
	n := safedim.MustProduct(nx, ny, nz)
	var codeSyms []uint32
	var literals []byte
	for _, c := range comps {
		rec := make([]float64, n)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := (k*ny+j)*nx + i
					pred := lorenzoF(rec, nx, ny, i, j, k)
					val := float64(c[idx])
					code := math.Round((val - pred) / (2 * abs))
					recon := pred + code*2*abs
					if math.Abs(code) >= quantizer.Radius || math.Abs(recon-val) > abs {
						codeSyms = append(codeSyms, escSym)
						var b [4]byte
						binary.LittleEndian.PutUint32(b[:], math.Float32bits(c[idx]))
						literals = append(literals, b[:]...)
						rec[idx] = val
					} else {
						codeSyms = append(codeSyms, huffman.Zigzag(int64(code)))
						rec[idx] = recon
					}
				}
			}
		}
	}
	head := szHeader(szMagic, ndim, nx, ny, nz)
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(abs))
	return encoder.Pack(head, huffman.Compress(codeSyms), literals)
}

const escSym = uint32(2 * quantizer.Radius)

// Decompress2D reconstructs a 2D field compressed by SZLike.
func (s SZLike) Decompress2D(blob []byte) (*field.Field2D, error) {
	defer s.Tel.Span("baselines.sz.decompress2d").End()
	ndim, nx, ny, _, comps, err := szDecompress(blob)
	if err != nil {
		return nil, err
	}
	if ndim != 2 {
		return nil, errors.New("baselines: not a 2D stream")
	}
	f := field.NewField2D(nx, ny)
	copy(f.U, comps[0])
	copy(f.V, comps[1])
	return f, nil
}

// Decompress3D reconstructs a 3D field compressed by SZLike.
func (s SZLike) Decompress3D(blob []byte) (*field.Field3D, error) {
	defer s.Tel.Span("baselines.sz.decompress3d").End()
	ndim, nx, ny, nz, comps, err := szDecompress(blob)
	if err != nil {
		return nil, err
	}
	if ndim != 3 {
		return nil, errors.New("baselines: not a 3D stream")
	}
	f := field.NewField3D(nx, ny, nz)
	copy(f.U, comps[0])
	copy(f.V, comps[1])
	copy(f.W, comps[2])
	return f, nil
}

func szDecompress(blob []byte) (ndim, nx, ny, nz int, comps [][]float32, err error) {
	sections, err := encoder.Unpack(blob)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if len(sections) != 3 {
		return 0, 0, 0, 0, nil, errors.New("baselines: wrong section count")
	}
	head := sections[0]
	ndim, nx, ny, nz, head, err = szReadHeader(head, szMagic)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if len(head) < 8 {
		return 0, 0, 0, 0, nil, errors.New("baselines: truncated header")
	}
	abs := math.Float64frombits(binary.LittleEndian.Uint64(head))
	codeSyms, err := huffman.Decompress(sections[1])
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	literals := sections[2]
	n, err := szVertexCount(nx, ny, nz)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	ncomp := ndim
	if len(codeSyms) != n*ncomp {
		return 0, 0, 0, 0, nil, errors.New("baselines: stream length mismatch")
	}
	comps = make([][]float32, ncomp)
	pos := 0
	for c := 0; c < ncomp; c++ {
		rec := make([]float64, n)
		out := make([]float32, n)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := (k*ny+j)*nx + i
					sym := codeSyms[pos]
					pos++
					if sym == escSym {
						if len(literals) < 4 {
							return 0, 0, 0, 0, nil, errors.New("baselines: literal underrun")
						}
						v := math.Float32frombits(binary.LittleEndian.Uint32(literals))
						literals = literals[4:]
						rec[idx] = float64(v)
						out[idx] = v
						continue
					}
					pred := lorenzoF(rec, nx, ny, i, j, k)
					recon := pred + float64(huffman.Unzigzag(sym))*2*abs
					rec[idx] = recon
					out[idx] = float32(recon)
				}
			}
		}
		comps[c] = out
	}
	return ndim, nx, ny, nz, comps, nil
}

// lorenzoF is the float Lorenzo predictor over a (possibly flat) volume.
func lorenzoF(rec []float64, nx, ny, i, j, k int) float64 {
	sx, sy, sz := 1, nx, nx*ny
	idx := (k*ny+j)*nx + i
	switch {
	case i > 0 && j > 0 && k > 0:
		return rec[idx-sx] + rec[idx-sy] + rec[idx-sz] -
			rec[idx-sx-sy] - rec[idx-sx-sz] - rec[idx-sy-sz] +
			rec[idx-sx-sy-sz]
	case i > 0 && j > 0:
		return rec[idx-sx] + rec[idx-sy] - rec[idx-sx-sy]
	case i > 0 && k > 0:
		return rec[idx-sx] + rec[idx-sz] - rec[idx-sx-sz]
	case j > 0 && k > 0:
		return rec[idx-sy] + rec[idx-sz] - rec[idx-sy-sz]
	case i > 0:
		return rec[idx-sx]
	case j > 0:
		return rec[idx-sy]
	case k > 0:
		return rec[idx-sz]
	default:
		return 0
	}
}

func szHeader(magic uint16, ndim, nx, ny, nz int) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint16(b, magic)
	b = append(b, byte(ndim))
	b = binary.AppendUvarint(b, uint64(nx))
	b = binary.AppendUvarint(b, uint64(ny))
	b = binary.AppendUvarint(b, uint64(nz))
	return b
}

func szReadHeader(b []byte, magic uint16) (ndim, nx, ny, nz int, rest []byte, err error) {
	if len(b) < 3 || binary.LittleEndian.Uint16(b) != magic {
		return 0, 0, 0, 0, nil, errors.New("baselines: bad magic")
	}
	ndim = int(b[2])
	if ndim != 2 && ndim != 3 {
		return 0, 0, 0, 0, nil, errors.New("baselines: bad dimensionality")
	}
	b = b[3:]
	bad := false
	read := func() int {
		v, k := binary.Uvarint(b)
		if k <= 0 || v < 1 || v > 1<<28 {
			bad = true
			return 1
		}
		b = b[k:]
		return int(v)
	}
	nx, ny, nz = read(), read(), read()
	if bad {
		return 0, 0, 0, 0, nil, errors.New("baselines: bad dims")
	}
	return ndim, nx, ny, nz, b, nil
}

// szVertexCount returns nx·ny·nz with overflow protection: the
// per-dimension bounds of szReadHeader still allow a product past
// int64, which must not wrap into a small length that stream checks
// would then trust.
func szVertexCount(nx, ny, nz int) (int, error) {
	p := uint64(nx) * uint64(ny) // each <= 2^28, no overflow
	if p > 1<<40 || p > (1<<40)/uint64(nz) {
		return 0, errors.New("baselines: field too large")
	}
	return int(p * uint64(nz)), nil
}
