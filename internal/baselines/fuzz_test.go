package baselines

import "testing"

// Decoder robustness for the three baseline codecs: corrupt or truncated
// input must error, never panic or allocate unboundedly.

func FuzzSZLikeDecompress(f *testing.F) {
	fld := smooth2D(60, 12, 10)
	blob, err := SZLike{Abs: 0.01}.Compress2D(fld)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		SZLike{}.Decompress2D(data)
		SZLike{}.Decompress3D(data)
	})
}

func FuzzZFPLikeDecompress(f *testing.F) {
	fld := smooth2D(61, 12, 10)
	blob, err := ZFPLike{Accuracy: 0.01}.Compress2D(fld)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		ZFPLike{}.Decompress2D(data)
		ZFPLike{}.Decompress3D(data)
	})
}

func FuzzFPZIPLikeDecompress(f *testing.F) {
	fld := smooth2D(62, 12, 10)
	blob, err := FPZIPLike{Precision: 16}.Compress2D(fld)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		FPZIPLike{}.Decompress2D(data)
		FPZIPLike{}.Decompress3D(data)
	})
}

func TestBaselineTruncationsNeverPanic(t *testing.T) {
	fld := smooth2D(63, 16, 12)
	blobs := [][]byte{}
	if b, err := (SZLike{Abs: 0.01}).Compress2D(fld); err == nil {
		blobs = append(blobs, b)
	}
	if b, err := (ZFPLike{Precision: 12}).Compress2D(fld); err == nil {
		blobs = append(blobs, b)
	}
	if b, err := (FPZIPLike{Precision: 16}).Compress2D(fld); err == nil {
		blobs = append(blobs, b)
	}
	for _, blob := range blobs {
		for cut := 0; cut < len(blob); cut += 11 {
			SZLike{}.Decompress2D(blob[:cut])
			ZFPLike{}.Decompress2D(blob[:cut])
			FPZIPLike{}.Decompress2D(blob[:cut])
		}
	}
}
