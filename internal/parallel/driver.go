package parallel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/safedim"
	"repro/internal/telemetry"
)

// The dimension-generic distributed driver. CompressDistributed2D/3D and
// DecompressDistributed2D/3D are thin wrappers that extract the per-rank
// sub-blocks and scatter the decoded blocks; everything else — rank
// topology, the phase-1/phase-2 ghost exchanges of the ratio-oriented
// protocol (Fig. 4), timing, and result aggregation — lives here once.

// Result summarizes a distributed compression run.
type Result struct {
	// Blobs holds the per-rank compressed blocks (rank order).
	Blobs [][]byte
	// RawBytes and CompressedBytes give the global compression ratio.
	RawBytes, CompressedBytes int64
	// Stats carries the simulated-run timing (makespan = compression
	// wall time on the virtual machine) and communication volume.
	Stats mpi.Stats
	// EncStats aggregates the per-rank encoder stats (speculation,
	// relaxation, lossless escapes) across the whole machine.
	EncStats core.Stats
}

// Ratio returns the global compression ratio.
func (r Result) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.CompressedBytes)
}

// ThroughputMBps returns the aggregate compression throughput implied by
// the virtual makespan, in MB/s.
func (r Result) ThroughputMBps() float64 {
	s := r.Stats.Makespan.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.RawBytes) / 1e6 / s
}

// runTel carries the telemetry wiring of one distributed run. All fields
// are nil (and every method a no-op) when telemetry is disabled.
type runTel struct {
	run   *telemetry.Span
	ranks []*telemetry.Span
	p1Msgs, p1Bytes,
	p2Msgs, p2Bytes *telemetry.Counter
}

// newRunTel pre-creates the run span and one child span per rank, in rank
// order, so the snapshot layout is deterministic regardless of how the
// rank goroutines are scheduled.
func newRunTel(tel *telemetry.Collector, name string, ranks int) runTel {
	if tel == nil {
		return runTel{}
	}
	rt := runTel{
		run:     tel.Span(name),
		ranks:   make([]*telemetry.Span, ranks),
		p1Msgs:  tel.Counter("parallel.phase1.msgs"),
		p1Bytes: tel.Counter("parallel.phase1.bytes"),
		p2Msgs:  tel.Counter("parallel.phase2.msgs"),
		p2Bytes: tel.Counter("parallel.phase2.bytes"),
	}
	for r := range rt.ranks {
		rt.ranks[r] = rt.run.Child(fmt.Sprintf("rank%d", r))
	}
	return rt
}

// rank returns rank r's span (nil when disabled).
func (rt runTel) rank(r int) *telemetry.Span {
	if rt.ranks == nil {
		return nil
	}
	return rt.ranks[r]
}

// sent records a phase-1 or phase-2 ghost message of n payload bytes.
func (rt runTel) sent(phase2 bool, n int) {
	if phase2 {
		rt.p2Msgs.Inc()
		rt.p2Bytes.Add(int64(n))
	} else {
		rt.p1Msgs.Inc()
		rt.p1Bytes.Add(int64(n))
	}
}

// finish ends every rank span and the run span.
func (rt runTel) finish() {
	for _, sp := range rt.ranks {
		sp.End()
	}
	rt.run.End()
}

// Message tags: phase-1 ghosts carry the sender's side index; phase-2
// ghosts are offset by 10.
const phase2TagOffset = 10

// opposite maps a side to the side seen by the neighbor across it.
func opposite(side int) int {
	if side%2 == 0 {
		return side + 1
	}
	return side - 1
}

// blockEncoder is the per-rank encoder surface the driver runs; both
// core.Encoder2D and core.Encoder3D satisfy it.
type blockEncoder interface {
	Prepare()
	Run()
	RunPhase1()
	RunPhase2()
	Finish() ([]byte, error)
	Stats() core.Stats
	BorderPlane(side int) [][]int64
	SetGhostPlane(side int, vals [][]int64) error
	Close()
}

// flatten packs the per-component planes of one border into a single
// message payload; splitComps is its inverse on the receiving side.
func flatten(planes [][]int64) []int64 {
	out := make([]int64, 0, safedim.MustProduct(len(planes), len(planes[0])))
	for _, p := range planes {
		out = append(out, p...)
	}
	return out
}

func splitComps(vals []int64, nc int) [][]int64 {
	part := len(vals) / nc
	out := make([][]int64, nc)
	for c := range out {
		out[c] = vals[c*part : (c+1)*part]
	}
	return out
}

// compressDistributed runs one compression job on a simulated machine of
// dims[0]×dims[1]×dims[2] ranks (a 2D grid passes dims[2] == 1). newEnc
// builds rank p's encoder from its sub-block; everything else is
// dimension-generic.
func compressDistributed(name string, ndim int, dims [3]int, rawBytes int64,
	opts core.Options, strat Strategy, mcfg mpi.Config,
	newEnc func(p [3]int, o core.Options, neighbor [6]bool) (blockEncoder, error)) (Result, error) {

	nc := ndim
	ranks := safedim.MustProduct(dims[0], dims[1], dims[2])
	mcfg.Ranks = ranks
	if mcfg.Tel == nil {
		mcfg.Tel = opts.Tel
	}
	rt := newRunTel(mcfg.Tel, "parallel.compress"+name, ranks)

	blobs := make([][]byte, ranks)
	errs := make([]error, ranks)
	stats := make([]core.Stats, ranks)

	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		p := [3]int{c.Rank % dims[0], (c.Rank / dims[0]) % dims[1], c.Rank / (dims[0] * dims[1])}
		stride := [3]int{1, dims[0], dims[0] * dims[1]}
		nb := [6]int{-1, -1, -1, -1, -1, -1}
		var neighbor [6]bool
		for ax := 0; ax < ndim; ax++ {
			if p[ax] > 0 {
				nb[2*ax] = c.Rank - stride[ax]
			}
			if p[ax] < dims[ax]-1 {
				nb[2*ax+1] = c.Rank + stride[ax]
			}
		}
		for s, r := range nb {
			if r >= 0 && strat != Naive {
				neighbor[s] = true
			}
		}
		o := opts
		o.Tel = mcfg.Tel
		o.TelSpan = rt.rank(c.Rank)
		enc, err := newEnc(p, o, neighbor)
		if err != nil {
			errs[c.Rank] = err
			return
		}

		if strat != RatioOriented {
			var blob []byte
			c.Time(func() {
				enc.Run()
				blob, err = enc.Finish()
			})
			blobs[c.Rank], errs[c.Rank] = blob, err
			stats[c.Rank] = enc.Stats()
			enc.Close()
			return
		}

		// Phase-1 exchange: original border values to every neighbor.
		// Exchange spans report virtual time (clock advance across the
		// exchange), since the data movement itself is simulated.
		x0 := c.Elapsed()
		for s, r := range nb {
			if r < 0 {
				continue
			}
			vals := flatten(enc.BorderPlane(s))
			rt.sent(false, 8*len(vals))
			c.SendInt64s(r, s, vals)
		}
		for s, r := range nb {
			if r < 0 {
				continue
			}
			// The deadline/retry policy of mcfg guards against straggling
			// or wedged neighbor ranks; with no deadline configured this
			// blocks exactly like the seed driver.
			vals, err := c.RecvInt64sTimeout(r, opposite(s))
			if err != nil {
				errs[c.Rank] = err
				return
			}
			if err := enc.SetGhostPlane(s, splitComps(vals, nc)); err != nil {
				errs[c.Rank] = err
				return
			}
		}
		rt.rank(c.Rank).AddChild("ghost-exchange-p1", c.Elapsed()-x0)
		c.Time(func() {
			enc.Prepare()
			enc.RunPhase1()
		})
		// Phase-2 exchange: decompressed min borders flow to min-side
		// neighbors, becoming their max-side ghosts.
		x1 := c.Elapsed()
		for ax := 0; ax < ndim; ax++ {
			if s := 2 * ax; nb[s] >= 0 {
				vals := flatten(enc.BorderPlane(s))
				rt.sent(true, 8*len(vals))
				c.SendInt64s(nb[s], phase2TagOffset+s, vals)
			}
		}
		for ax := 0; ax < ndim; ax++ {
			if s := 2*ax + 1; nb[s] >= 0 {
				vals, err := c.RecvInt64sTimeout(nb[s], phase2TagOffset+opposite(s))
				if err != nil {
					errs[c.Rank] = err
					return
				}
				if err := enc.SetGhostPlane(s, splitComps(vals, nc)); err != nil {
					errs[c.Rank] = err
					return
				}
			}
		}
		rt.rank(c.Rank).AddChild("ghost-exchange-p2", c.Elapsed()-x1)
		var blob []byte
		var ferr error
		c.Time(func() {
			enc.RunPhase2()
			blob, ferr = enc.Finish()
		})
		blobs[c.Rank], errs[c.Rank] = blob, ferr
		stats[c.Rank] = enc.Stats()
		enc.Close()
	})
	rt.finish()

	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Blobs: blobs, Stats: st, RawBytes: rawBytes}
	for _, b := range blobs {
		res.CompressedBytes += int64(len(b))
	}
	for _, s := range stats {
		res.EncStats.Add(s)
	}
	return res, nil
}

// decompressDistributed decodes the per-rank blobs on the simulated
// machine. decode is rank p's decode-and-scatter step; its decode portion
// is timed under the rank's "decode" span.
func decompressDistributed(name string, dims [3]int, mcfg mpi.Config,
	decode func(c *mpi.Comm, p [3]int, span *telemetry.Span) error) (mpi.Stats, error) {

	ranks := safedim.MustProduct(dims[0], dims[1], dims[2])
	mcfg.Ranks = ranks
	errs := make([]error, ranks)
	rt := newRunTel(mcfg.Tel, "parallel.decompress"+name, ranks)
	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		p := [3]int{c.Rank % dims[0], (c.Rank / dims[0]) % dims[1], c.Rank / (dims[0] * dims[1])}
		errs[c.Rank] = decode(c, p, rt.rank(c.Rank))
	})
	rt.finish()
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
