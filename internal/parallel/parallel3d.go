package parallel

import (
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
	"repro/internal/safedim"
	"repro/internal/telemetry"
)

// CompressDistributed3D compresses f on a simulated PX×PY×PZ machine.
func CompressDistributed3D(f *field.Field3D, tr fixed.Transform, opts core.Options,
	grid Grid3D, strat Strategy, mcfg mpi.Config) (Result, error) {

	if grid.Ranks() < 1 {
		return Result{}, errGrid
	}
	xs, err := Partition(f.NX, grid.PX)
	if err != nil {
		return Result{}, err
	}
	ys, err := Partition(f.NY, grid.PY)
	if err != nil {
		return Result{}, err
	}
	zs, err := Partition(f.NZ, grid.PZ)
	if err != nil {
		return Result{}, err
	}
	rawBytes := int64(len(f.U)+len(f.V)+len(f.W)) * 4
	return compressDistributed("3d", 3, [3]int{grid.PX, grid.PY, grid.PZ}, rawBytes, opts, strat, mcfg,
		func(p [3]int, o core.Options, neighbor [6]bool) (blockEncoder, error) {
			sx, sy, sz := xs[p[0]], ys[p[1]], zs[p[2]]
			n := safedim.MustProduct(sx.Size, sy.Size, sz.Size)
			bu := make([]float32, n)
			bv := make([]float32, n)
			bw := make([]float32, n)
			for k := 0; k < sz.Size; k++ {
				for j := 0; j < sy.Size; j++ {
					src := ((sz.Start+k)*f.NY+(sy.Start+j))*f.NX + sx.Start
					dst := (k*sy.Size + j) * sx.Size
					copy(bu[dst:dst+sx.Size], f.U[src:])
					copy(bv[dst:dst+sx.Size], f.V[src:])
					copy(bw[dst:dst+sx.Size], f.W[src:])
				}
			}
			blk := core.Block3D{
				NX: sx.Size, NY: sy.Size, NZ: sz.Size, U: bu, V: bv, W: bw,
				Transform: tr, Opts: o,
				GlobalX0: sx.Start, GlobalY0: sy.Start, GlobalZ0: sz.Start,
				GlobalNX: f.NX, GlobalNY: f.NY, GlobalNZ: f.NZ,
				Neighbor:       neighbor,
				LosslessBorder: strat == LosslessBorders,
				TwoPhase:       strat == RatioOriented,
			}
			return core.NewEncoder3D(blk)
		})
}

// DecompressDistributed3D decodes the per-rank blobs and reassembles the
// global field.
func DecompressDistributed3D(blobs [][]byte, grid Grid3D, nx, ny, nz int, mcfg mpi.Config) (*field.Field3D, mpi.Stats, error) {
	xs, err := Partition(nx, grid.PX)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	ys, err := Partition(ny, grid.PY)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	zs, err := Partition(nz, grid.PZ)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	out := field.NewField3D(nx, ny, nz)
	st, err := decompressDistributed("3d", [3]int{grid.PX, grid.PY, grid.PZ}, mcfg,
		func(c *mpi.Comm, p [3]int, span *telemetry.Span) error {
			sx, sy, sz := xs[p[0]], ys[p[1]], zs[p[2]]
			var bf *field.Field3D
			var err error
			d := c.Time(func() {
				bf, err = core.Decompress3D(blobs[c.Rank])
			})
			span.AddChild("decode", d)
			if err != nil {
				return err
			}
			for k := 0; k < sz.Size; k++ {
				for j := 0; j < sy.Size; j++ {
					dst := ((sz.Start+k)*ny+(sy.Start+j))*nx + sx.Start
					src := (k*sy.Size + j) * sx.Size
					copy(out.U[dst:dst+sx.Size], bf.U[src:])
					copy(out.V[dst:dst+sx.Size], bf.V[src:])
					copy(out.W[dst:dst+sx.Size], bf.W[src:])
				}
			}
			return nil
		})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// GlobalTransform fits the shared fixed-point transform for a distributed
// run (in a real MPI program this is an allreduce over the data range).
func GlobalTransform2D(f *field.Field2D) (fixed.Transform, error) {
	return fixed.Fit(f.U, f.V)
}

// GlobalTransform3D fits the shared transform for a 3D field.
func GlobalTransform3D(f *field.Field3D) (fixed.Transform, error) {
	return fixed.Fit(f.U, f.V, f.W)
}

// FitTransformDistributed computes the shared transform the way a real
// MPI program does: every rank reduces the absolute maximum of its local
// components, the maxima are combined with an allreduce, and each rank
// derives the (identical) transform from the global maximum.
func FitTransformDistributed(c *mpi.Comm, comps ...[]float32) fixed.Transform {
	localMax := 0.0
	for _, comp := range comps {
		for _, v := range comp {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > localMax {
				localMax = a
			}
		}
	}
	return fixed.FromMaxAbs(c.AllReduceMax(localMax))
}
