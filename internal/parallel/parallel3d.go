package parallel

import (
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
)

// CompressDistributed3D compresses f on a simulated PX×PY×PZ machine.
func CompressDistributed3D(f *field.Field3D, tr fixed.Transform, opts core.Options,
	grid Grid3D, strat Strategy, mcfg mpi.Config) (Result, error) {

	if grid.Ranks() < 1 {
		return Result{}, errGrid
	}
	xs, err := partition(f.NX, grid.PX)
	if err != nil {
		return Result{}, err
	}
	ys, err := partition(f.NY, grid.PY)
	if err != nil {
		return Result{}, err
	}
	zs, err := partition(f.NZ, grid.PZ)
	if err != nil {
		return Result{}, err
	}
	mcfg.Ranks = grid.Ranks()
	if mcfg.Tel == nil {
		mcfg.Tel = opts.Tel
	}
	rt := newRunTel(mcfg.Tel, "parallel.compress3d", grid.Ranks())

	blobs := make([][]byte, grid.Ranks())
	errs := make([]error, grid.Ranks())
	stats := make([]core.Stats, grid.Ranks())

	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		px := c.Rank % grid.PX
		py := (c.Rank / grid.PX) % grid.PY
		pz := c.Rank / (grid.PX * grid.PY)
		sx, sy, sz := xs[px], ys[py], zs[pz]
		n := sx.size * sy.size * sz.size
		bu := make([]float32, n)
		bv := make([]float32, n)
		bw := make([]float32, n)
		for k := 0; k < sz.size; k++ {
			for j := 0; j < sy.size; j++ {
				src := ((sz.start+k)*f.NY+(sy.start+j))*f.NX + sx.start
				dst := (k*sy.size + j) * sx.size
				copy(bu[dst:dst+sx.size], f.U[src:])
				copy(bv[dst:dst+sx.size], f.V[src:])
				copy(bw[dst:dst+sx.size], f.W[src:])
			}
		}
		blk := core.Block3D{
			NX: sx.size, NY: sy.size, NZ: sz.size, U: bu, V: bv, W: bw,
			Transform: tr, Opts: opts,
			GlobalX0: sx.start, GlobalY0: sy.start, GlobalZ0: sz.start,
			GlobalNX: f.NX, GlobalNY: f.NY, GlobalNZ: f.NZ,
		}
		blk.Opts.Tel = mcfg.Tel
		blk.Opts.TelSpan = rt.rank(c.Rank)
		nb := [6]int{-1, -1, -1, -1, -1, -1}
		if px > 0 {
			nb[core.SideMinX] = c.Rank - 1
		}
		if px < grid.PX-1 {
			nb[core.SideMaxX] = c.Rank + 1
		}
		if py > 0 {
			nb[core.SideMinY] = c.Rank - grid.PX
		}
		if py < grid.PY-1 {
			nb[core.SideMaxY] = c.Rank + grid.PX
		}
		if pz > 0 {
			nb[core.SideMinZ] = c.Rank - grid.PX*grid.PY
		}
		if pz < grid.PZ-1 {
			nb[core.SideMaxZ] = c.Rank + grid.PX*grid.PY
		}
		for s, r := range nb {
			if r >= 0 && strat != Naive {
				blk.Neighbor[s] = true
			}
		}
		switch strat {
		case LosslessBorders:
			blk.LosslessBorder = true
		case RatioOriented:
			blk.TwoPhase = true
		}

		enc, err := core.NewEncoder3D(blk)
		if err != nil {
			errs[c.Rank] = err
			return
		}

		if strat != RatioOriented {
			var blob []byte
			c.Time(func() {
				enc.Run()
				blob, err = enc.Finish()
			})
			blobs[c.Rank], errs[c.Rank] = blob, err
			stats[c.Rank] = enc.Stats()
			return
		}

		x0 := c.Elapsed()
		for s, r := range nb {
			if r < 0 {
				continue
			}
			u, v, w := enc.BorderFace(s)
			vals := concat3(u, v, w)
			rt.sent(false, 8*len(vals))
			c.SendInt64s(r, s, vals)
		}
		for s, r := range nb {
			if r < 0 {
				continue
			}
			vals := c.RecvInt64s(r, opposite(s))
			u, v, w := split3(vals)
			if err := enc.SetGhostFace(s, u, v, w); err != nil {
				errs[c.Rank] = err
				return
			}
		}
		rt.rank(c.Rank).AddChild("ghost-exchange-p1", c.Elapsed()-x0)
		c.Time(func() {
			enc.Prepare()
			enc.RunPhase1()
		})
		x1 := c.Elapsed()
		for _, s := range [3]int{core.SideMinX, core.SideMinY, core.SideMinZ} {
			if r := nb[s]; r >= 0 {
				u, v, w := enc.BorderFace(s)
				vals := concat3(u, v, w)
				rt.sent(true, 8*len(vals))
				c.SendInt64s(r, phase2TagOffset+s, vals)
			}
		}
		for _, s := range [3]int{core.SideMaxX, core.SideMaxY, core.SideMaxZ} {
			if r := nb[s]; r >= 0 {
				vals := c.RecvInt64s(r, phase2TagOffset+opposite(s))
				u, v, w := split3(vals)
				if err := enc.SetGhostFace(s, u, v, w); err != nil {
					errs[c.Rank] = err
					return
				}
			}
		}
		rt.rank(c.Rank).AddChild("ghost-exchange-p2", c.Elapsed()-x1)
		var blob []byte
		var ferr error
		c.Time(func() {
			enc.RunPhase2()
			blob, ferr = enc.Finish()
		})
		blobs[c.Rank], errs[c.Rank] = blob, ferr
		stats[c.Rank] = enc.Stats()
	})
	rt.finish()

	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Blobs: blobs, Stats: st, RawBytes: int64(len(f.U)+len(f.V)+len(f.W)) * 4}
	for _, b := range blobs {
		res.CompressedBytes += int64(len(b))
	}
	for _, s := range stats {
		res.EncStats.Add(s)
	}
	return res, nil
}

func concat3(u, v, w []int64) []int64 {
	out := make([]int64, 0, 3*len(u))
	out = append(out, u...)
	out = append(out, v...)
	return append(out, w...)
}

func split3(vals []int64) (u, v, w []int64) {
	third := len(vals) / 3
	return vals[:third], vals[third : 2*third], vals[2*third:]
}

// DecompressDistributed3D decodes the per-rank blobs and reassembles the
// global field.
func DecompressDistributed3D(blobs [][]byte, grid Grid3D, nx, ny, nz int, mcfg mpi.Config) (*field.Field3D, mpi.Stats, error) {
	xs, err := partition(nx, grid.PX)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	ys, err := partition(ny, grid.PY)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	zs, err := partition(nz, grid.PZ)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	out := field.NewField3D(nx, ny, nz)
	errs := make([]error, grid.Ranks())
	mcfg.Ranks = grid.Ranks()
	rt := newRunTel(mcfg.Tel, "parallel.decompress3d", grid.Ranks())
	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		px := c.Rank % grid.PX
		py := (c.Rank / grid.PX) % grid.PY
		pz := c.Rank / (grid.PX * grid.PY)
		sx, sy, sz := xs[px], ys[py], zs[pz]
		var bf *field.Field3D
		var err error
		d := c.Time(func() {
			bf, err = core.Decompress3D(blobs[c.Rank])
		})
		rt.rank(c.Rank).AddChild("decode", d)
		if err != nil {
			errs[c.Rank] = err
			return
		}
		for k := 0; k < sz.size; k++ {
			for j := 0; j < sy.size; j++ {
				dst := ((sz.start+k)*ny+(sy.start+j))*nx + sx.start
				src := (k*sy.size + j) * sx.size
				copy(out.U[dst:dst+sx.size], bf.U[src:])
				copy(out.V[dst:dst+sx.size], bf.V[src:])
				copy(out.W[dst:dst+sx.size], bf.W[src:])
			}
		}
	})
	rt.finish()
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return out, st, nil
}

// GlobalTransform fits the shared fixed-point transform for a distributed
// run (in a real MPI program this is an allreduce over the data range).
func GlobalTransform2D(f *field.Field2D) (fixed.Transform, error) {
	return fixed.Fit(f.U, f.V)
}

// GlobalTransform3D fits the shared transform for a 3D field.
func GlobalTransform3D(f *field.Field3D) (fixed.Transform, error) {
	return fixed.Fit(f.U, f.V, f.W)
}

// FitTransformDistributed computes the shared transform the way a real
// MPI program does: every rank reduces the absolute maximum of its local
// components, the maxima are combined with an allreduce, and each rank
// derives the (identical) transform from the global maximum.
func FitTransformDistributed(c *mpi.Comm, comps ...[]float32) fixed.Transform {
	localMax := 0.0
	for _, comp := range comps {
		for _, v := range comp {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > localMax {
				localMax = a
			}
		}
	}
	return fixed.FromMaxAbs(c.AllReduceMax(localMax))
}
