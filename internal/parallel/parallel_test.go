package parallel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/encoder"
	"repro/internal/field"
	"repro/internal/mpi"
)

func smooth2D(seed int64, nx, ny int) *field.Field2D {
	rng := rand.New(rand.NewSource(seed))
	f := field.NewField2D(nx, ny)
	type mode struct{ ax, ay, px, py, amp float64 }
	modes := make([]mode, 6)
	for i := range modes {
		modes[i] = mode{
			ax:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(nx),
			ay:  (rng.Float64() + 0.5) * 4 * math.Pi / float64(ny),
			px:  rng.Float64() * 2 * math.Pi,
			py:  rng.Float64() * 2 * math.Pi,
			amp: rng.Float64() + 0.2,
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			var u, v float64
			for _, m := range modes {
				u += m.amp * math.Sin(m.ax*float64(i)+m.px) * math.Cos(m.ay*float64(j)+m.py)
				v += m.amp * math.Cos(m.ax*float64(i)+m.py) * math.Sin(m.ay*float64(j)+m.px)
			}
			f.U[f.Idx(i, j)] = float32(u)
			f.V[f.Idx(i, j)] = float32(v)
		}
	}
	return f
}

func smooth3D(seed int64, n int) *field.Field3D {
	rng := rand.New(rand.NewSource(seed))
	f := field.NewField3D(n, n, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := 4 * math.Pi * float64(i) / float64(n)
				y := 4 * math.Pi * float64(j) / float64(n)
				z := 4 * math.Pi * float64(k) / float64(n)
				idx := f.Idx(i, j, k)
				f.U[idx] = float32(math.Sin(x)*math.Cos(y) + rng.NormFloat64()*1e-3)
				f.V[idx] = float32(math.Cos(y)*math.Sin(z) + rng.NormFloat64()*1e-3)
				f.W[idx] = float32(math.Sin(z)*math.Cos(x) + rng.NormFloat64()*1e-3)
			}
		}
	}
	return f
}

func TestPartition(t *testing.T) {
	spans, err := Partition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range spans {
		total += s.Size
		if s.Size < 2 {
			t.Errorf("span too small: %+v", s)
		}
	}
	if total != 10 {
		t.Errorf("spans cover %d", total)
	}
	if spans[0].Start != 0 || spans[2].Start+spans[2].Size != 10 {
		t.Errorf("bad coverage: %+v", spans)
	}
	if _, err := Partition(3, 2); err == nil {
		t.Error("too-small partition must fail")
	}
}

func TestStrategyString(t *testing.T) {
	if Naive.String() != "naive" || LosslessBorders.String() != "lossless-borders" || RatioOriented.String() != "ratio-oriented" {
		t.Error("strategy names")
	}
}

func runStrategy2D(t *testing.T, f *field.Field2D, grid Grid2D, strat Strategy, spec core.Speculation) (cp.Report, Result) {
	t.Helper()
	tr, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField2D(f, tr)
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.05, Spec: spec}, grid, strat, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := DecompressDistributed2D(res.Blobs, grid, f.NX, f.NY, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return cp.Compare(orig, cp.DetectField2D(g, tr)), res
}

func TestLosslessBordersPreserves2D(t *testing.T) {
	f := smooth2D(1, 48, 40)
	rep, res := runStrategy2D(t, f, Grid2D{PX: 2, PY: 2}, LosslessBorders, core.NoSpec)
	if !rep.Preserved() {
		t.Errorf("lossless borders broke critical points: %v", rep)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("lossless borders should not communicate, sent %d messages", res.Stats.Messages)
	}
}

func TestRatioOrientedPreserves2D(t *testing.T) {
	f := smooth2D(2, 48, 40)
	rep, res := runStrategy2D(t, f, Grid2D{PX: 2, PY: 2}, RatioOriented, core.NoSpec)
	if !rep.Preserved() {
		t.Errorf("ratio-oriented broke critical points: %v", rep)
	}
	if res.Stats.Messages == 0 {
		t.Error("ratio-oriented must exchange ghosts")
	}
}

func TestRatioOrientedPreserves2DWithSpeculation(t *testing.T) {
	f := smooth2D(3, 48, 40)
	for _, spec := range []core.Speculation{core.ST2, core.ST4} {
		rep, _ := runStrategy2D(t, f, Grid2D{PX: 2, PY: 2}, RatioOriented, spec)
		if !rep.Preserved() {
			t.Errorf("%v: ratio-oriented broke critical points: %v", spec, rep)
		}
	}
}

func TestLosslessBordersPreservesWithSpeculation(t *testing.T) {
	f := smooth2D(4, 48, 40)
	rep, _ := runStrategy2D(t, f, Grid2D{PX: 2, PY: 2}, LosslessBorders, core.ST4)
	if !rep.Preserved() {
		t.Errorf("ST4 lossless borders broke critical points: %v", rep)
	}
}

func TestNaiveBreaksBorderCells2D(t *testing.T) {
	// The motivating failure: with enough ranks the naive strategy
	// produces false cases in border cells (Table II). We only assert
	// that preservation *may* fail, never that interior points break:
	// every false case must touch a rank boundary.
	f := smooth2D(5, 48, 40)
	tr, _ := GlobalTransform2D(f)
	orig := cp.DetectField2D(f, tr)
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.05, Spec: core.NoSpec}, Grid2D{PX: 4, PY: 4}, Naive, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := DecompressDistributed2D(res.Blobs, Grid2D{PX: 4, PY: 4}, f.NX, f.NY, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dec := cp.DetectField2D(g, tr)
	om := map[int]cp.Type{}
	for _, p := range orig {
		om[p.Cell] = p.Type
	}
	mesh := field.Mesh2D{NX: f.NX, NY: f.NY}
	xs, _ := Partition(f.NX, 4)
	ys, _ := Partition(f.NY, 4)
	onBorder := func(c int) bool {
		for _, v := range mesh.CellVertices(c) {
			i, j := mesh.VertexPos(v)
			for _, s := range xs[:3] {
				if i == s.Start+s.Size-1 || i == s.Start+s.Size {
					return true
				}
			}
			for _, s := range ys[:3] {
				if j == s.Start+s.Size-1 || j == s.Start+s.Size {
					return true
				}
			}
		}
		return false
	}
	for _, p := range dec {
		if _, ok := om[p.Cell]; !ok && !onBorder(p.Cell) {
			t.Errorf("naive produced an interior false positive in cell %d", p.Cell)
		}
	}
}

func TestRatioOrientedBeatsLosslessBordersRatio(t *testing.T) {
	f := smooth2D(6, 64, 64)
	_, resLB := runStrategy2D(t, f, Grid2D{PX: 4, PY: 4}, LosslessBorders, core.NoSpec)
	_, resRO := runStrategy2D(t, f, Grid2D{PX: 4, PY: 4}, RatioOriented, core.NoSpec)
	if resRO.Ratio() <= resLB.Ratio() {
		t.Errorf("ratio-oriented (%.2f) should beat lossless borders (%.2f)",
			resRO.Ratio(), resLB.Ratio())
	}
}

func TestDistributed3DPreservation(t *testing.T) {
	f := smooth3D(7, 16)
	tr, err := GlobalTransform3D(f)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField3D(f, tr)
	if len(orig) == 0 {
		t.Fatal("no critical points in 3D test field")
	}
	for _, strat := range []Strategy{LosslessBorders, RatioOriented} {
		res, err := CompressDistributed3D(f, tr, core.Options{Tau: 0.05}, Grid3D{2, 2, 2}, strat, mpi.Config{})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		g, _, err := DecompressDistributed3D(res.Blobs, Grid3D{2, 2, 2}, 16, 16, 16, mpi.Config{})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		rep := cp.Compare(orig, cp.DetectField3D(g, tr))
		if !rep.Preserved() {
			t.Errorf("%v: 3D distributed run broke critical points: %v", strat, rep)
		}
	}
}

func TestErrorBoundHolds2DDistributed(t *testing.T) {
	f := smooth2D(8, 48, 40)
	tr, _ := GlobalTransform2D(f)
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.02}, Grid2D{PX: 2, PY: 2}, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := DecompressDistributed2D(res.Blobs, Grid2D{PX: 2, PY: 2}, f.NX, f.NY, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.U {
		if math.Abs(float64(f.U[i])-float64(g.U[i])) > 0.02 {
			t.Fatalf("error bound violated at %d", i)
		}
	}
}

func TestSingleRankMatchesSingleNode(t *testing.T) {
	f := smooth2D(9, 32, 32)
	tr, _ := GlobalTransform2D(f)
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.01}, Grid2D{PX: 1, PY: 1}, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.CompressField2D(f, tr, core.Options{Tau: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// The headers legitimately differ (visit-order flag, and therefore
	// the header checksum), so compare the entropy-coded payload
	// sections: a lone rank must pay nothing over the single-node path.
	ds, err := encoder.Unpack(res.Blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	ss, err := encoder.Unpack(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(ss) {
		t.Fatalf("section count %d != %d", len(ds), len(ss))
	}
	for i := 1; i < len(ss); i++ {
		if !bytes.Equal(ds[i], ss[i]) {
			t.Errorf("payload section %d of 1-rank distributed differs from single node", i)
		}
	}
}

func TestFitTransformDistributedMatchesGlobal(t *testing.T) {
	f := smooth2D(11, 40, 32)
	want, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	xs, _ := Partition(f.NX, 2)
	ys, _ := Partition(f.NY, 2)
	got := make([]struct {
		scale float64
		shift int
	}, 4)
	mpi.Run(mpi.Config{Ranks: 4}, func(c *mpi.Comm) {
		px, py := c.Rank%2, c.Rank/2
		sx, sy := xs[px], ys[py]
		u := make([]float32, 0, sx.Size*sy.Size)
		v := make([]float32, 0, sx.Size*sy.Size)
		for j := 0; j < sy.Size; j++ {
			u = append(u, f.U[(sy.Start+j)*f.NX+sx.Start:][:sx.Size]...)
			v = append(v, f.V[(sy.Start+j)*f.NX+sx.Start:][:sx.Size]...)
		}
		tr := FitTransformDistributed(c, u, v)
		got[c.Rank] = struct {
			scale float64
			shift int
		}{tr.Scale, tr.Shift}
	})
	for r, g := range got {
		if g.scale != want.Scale || g.shift != want.Shift {
			t.Errorf("rank %d transform (%v,%d) != global (%v,%d)",
				r, g.scale, g.shift, want.Scale, want.Shift)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{RawBytes: 100, CompressedBytes: 10}
	if r.Ratio() != 10 {
		t.Errorf("Ratio = %v", r.Ratio())
	}
	if (Result{}).Ratio() != 0 {
		t.Error("empty result ratio should be 0")
	}
	if (Result{}).ThroughputMBps() != 0 {
		t.Error("empty result throughput should be 0")
	}
}
