// Package parallel implements the paper's distributed compression
// strategies (Section VI) on top of the simulated message-passing runtime
// (package mpi): naive block-independent compression (which breaks
// critical points in border cells), the simple lossless-border strategy
// (no communication, degraded ratio), and the ratio-oriented two-phase
// strategy (ghost exchange, near-single-node ratios).
package parallel

import (
	"errors"
	"fmt"
)

// Strategy selects the distributed compression scheme.
type Strategy int

const (
	// Naive compresses blocks independently; critical points in cells
	// spanning rank boundaries are not protected.
	Naive Strategy = iota
	// LosslessBorders stores every border vertex losslessly — no
	// communication, full preservation, reduced ratio.
	LosslessBorders
	// RatioOriented runs the two-phase ghost-exchange protocol of Fig. 4:
	// full preservation with near-single-node ratios at the cost of two
	// communication rounds.
	RatioOriented
)

// String returns the name used in the tables.
func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case LosslessBorders:
		return "lossless-borders"
	case RatioOriented:
		return "ratio-oriented"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Grid2D is a PX×PY rank decomposition.
type Grid2D struct{ PX, PY int }

// Ranks returns the number of ranks.
func (g Grid2D) Ranks() int { return g.PX * g.PY }

// Grid3D is a PX×PY×PZ rank decomposition.
type Grid3D struct{ PX, PY, PZ int }

// Ranks returns the number of ranks.
func (g Grid3D) Ranks() int { return g.PX * g.PY * g.PZ }

// Span is one block's extent along one axis of the lossless-border
// decomposition. It is shared by the simulated-MPI drivers and the
// shared-memory pipeline (package shm) so both split a field identically.
type Span struct{ Start, Size int }

// Partition splits n grid points into p spans of near-equal size (the
// first n%p spans are one point larger). Every span must hold at least
// two points — a block needs one cell of depth.
func Partition(n, p int) ([]Span, error) {
	if p <= 0 || n < 2*p {
		return nil, fmt.Errorf("parallel: cannot split %d points into %d blocks of >=2", n, p)
	}
	base := n / p
	rem := n % p
	spans := make([]Span, p)
	pos := 0
	for i := range spans {
		size := base
		if i < rem {
			size++
		}
		spans[i] = Span{Start: pos, Size: size}
		pos += size
	}
	return spans, nil
}

var errGrid = errors.New("parallel: invalid rank grid")
