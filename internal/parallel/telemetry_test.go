package parallel

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// TestDistributedTelemetry2D runs a ratio-oriented 2×2 compression with a
// collector attached and checks the per-rank span tree, the per-phase
// ghost-traffic counters, the mpi-layer counters, and the aggregated
// encoder stats.
func TestDistributedTelemetry2D(t *testing.T) {
	f := smooth2D(21, 64, 56)
	tr, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	grid := Grid2D{PX: 2, PY: 2}
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.05, Spec: core.ST2, Tel: tel},
		grid, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EncStats.Vertices != f.NX*f.NY {
		t.Errorf("EncStats.Vertices = %d, want %d", res.EncStats.Vertices, f.NX*f.NY)
	}
	if res.EncStats.SpecTrials == 0 {
		t.Error("expected speculation trials in aggregated stats")
	}

	snap := tel.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "parallel.compress2d" {
		t.Fatalf("expected one parallel.compress2d root span, got %+v", snap.Spans)
	}
	run := snap.Spans[0]
	if len(run.Children) != grid.Ranks() {
		t.Fatalf("run span has %d children, want %d ranks", len(run.Children), grid.Ranks())
	}
	for r, rank := range run.Children {
		if want := fmt.Sprintf("rank%d", r); rank.Name != want {
			t.Errorf("rank span %d named %q, want %q (order must be deterministic)", r, rank.Name, want)
		}
		stages := make(map[string]bool)
		for _, c := range rank.Children {
			stages[c.Name] = true
		}
		for _, want := range []string{"ghost-exchange-p1", "ghost-exchange-p2", "process-phase1", "process-phase2", "entropy-code"} {
			if !stages[want] {
				t.Errorf("rank %d missing stage span %q (got %v)", r, want, stages)
			}
		}
	}

	// 2×2 grid: each rank has 2 neighbors → 8 phase-1 messages; phase 2
	// flows only toward min-side neighbors → 4 messages.
	if got := snap.Counters["parallel.phase1.msgs"]; got != 8 {
		t.Errorf("phase1.msgs = %d, want 8", got)
	}
	if got := snap.Counters["parallel.phase2.msgs"]; got != 4 {
		t.Errorf("phase2.msgs = %d, want 4", got)
	}
	ghost := snap.Counters["parallel.phase1.bytes"] + snap.Counters["parallel.phase2.bytes"]
	if got := snap.Counters["mpi.p2p.bytes"]; got != ghost {
		t.Errorf("mpi.p2p.bytes = %d, want %d (all p2p traffic is ghost exchange)", got, ghost)
	}
	if got := snap.Counters["mpi.p2p.msgs"]; got != 12 {
		t.Errorf("mpi.p2p.msgs = %d, want 12", got)
	}
	if snap.Gauges["mpi.ranks"] != int64(grid.Ranks()) {
		t.Errorf("mpi.ranks gauge = %d, want %d", snap.Gauges["mpi.ranks"], grid.Ranks())
	}
	if h := snap.Histograms["mpi.msg_bytes"]; h.Count != 12 {
		t.Errorf("mpi.msg_bytes count = %d, want 12", h.Count)
	}
}

// TestDistributedTelemetry3D checks the 3D run produces the same shape of
// rank span tree and that the aggregated stats match a single-node run of
// the same field (vertex count only; border handling differs).
func TestDistributedTelemetry3D(t *testing.T) {
	f := smooth3D(22, 12)
	tr, err := GlobalTransform3D(f)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	res, err := CompressDistributed3D(f, tr, core.Options{Tau: 0.05, Spec: core.ST1, Tel: tel},
		Grid3D{PX: 2, PY: 1, PZ: 1}, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EncStats.Vertices != f.NX*f.NY*f.NZ {
		t.Errorf("EncStats.Vertices = %d, want %d", res.EncStats.Vertices, f.NX*f.NY*f.NZ)
	}
	snap := tel.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "parallel.compress3d" {
		t.Fatalf("expected parallel.compress3d root span, got %+v", snap.Spans)
	}
	if len(snap.Spans[0].Children) != 2 {
		t.Fatalf("want 2 rank spans, got %d", len(snap.Spans[0].Children))
	}
	// One neighbor pair: 2 phase-1 messages, 1 phase-2 message.
	if got := snap.Counters["parallel.phase1.msgs"]; got != 2 {
		t.Errorf("phase1.msgs = %d, want 2", got)
	}
	if got := snap.Counters["parallel.phase2.msgs"]; got != 1 {
		t.Errorf("phase2.msgs = %d, want 1", got)
	}
}

// TestDistributedDecompressTelemetry checks the decompress run span.
func TestDistributedDecompressTelemetry(t *testing.T) {
	f := smooth2D(23, 48, 40)
	tr, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid2D{PX: 2, PY: 1}
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.05}, grid, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	if _, _, err := DecompressDistributed2D(res.Blobs, grid, f.NX, f.NY, mpi.Config{Tel: tel}); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "parallel.decompress2d" {
		t.Fatalf("expected parallel.decompress2d root span, got %+v", snap.Spans)
	}
	for r, rank := range snap.Spans[0].Children {
		if len(rank.Children) != 1 || rank.Children[0].Name != "decode" {
			t.Errorf("rank %d: want a single decode span, got %+v", r, rank.Children)
		}
	}
}

// TestTelemetryDisabledDistributed makes sure a nil collector leaves the
// distributed path fully functional (the disabled fast path).
func TestTelemetryDisabledDistributed(t *testing.T) {
	f := smooth2D(24, 48, 40)
	tr, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompressDistributed2D(f, tr, core.Options{Tau: 0.05, Spec: core.ST2},
		Grid2D{PX: 2, PY: 2}, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EncStats.Vertices != f.NX*f.NY {
		t.Errorf("EncStats must be populated even without telemetry: %+v", res.EncStats)
	}
}
