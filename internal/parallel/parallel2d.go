package parallel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Result summarizes a distributed compression run.
type Result struct {
	// Blobs holds the per-rank compressed blocks (rank order).
	Blobs [][]byte
	// RawBytes and CompressedBytes give the global compression ratio.
	RawBytes, CompressedBytes int64
	// Stats carries the simulated-run timing (makespan = compression
	// wall time on the virtual machine) and communication volume.
	Stats mpi.Stats
	// EncStats aggregates the per-rank encoder stats (speculation,
	// relaxation, lossless escapes) across the whole machine.
	EncStats core.Stats
}

// runTel carries the telemetry wiring of one distributed run. All fields
// are nil (and every method a no-op) when telemetry is disabled.
type runTel struct {
	run   *telemetry.Span
	ranks []*telemetry.Span
	p1Msgs, p1Bytes,
	p2Msgs, p2Bytes *telemetry.Counter
}

// newRunTel pre-creates the run span and one child span per rank, in rank
// order, so the snapshot layout is deterministic regardless of how the
// rank goroutines are scheduled.
func newRunTel(tel *telemetry.Collector, name string, ranks int) runTel {
	if tel == nil {
		return runTel{}
	}
	rt := runTel{
		run:     tel.Span(name),
		ranks:   make([]*telemetry.Span, ranks),
		p1Msgs:  tel.Counter("parallel.phase1.msgs"),
		p1Bytes: tel.Counter("parallel.phase1.bytes"),
		p2Msgs:  tel.Counter("parallel.phase2.msgs"),
		p2Bytes: tel.Counter("parallel.phase2.bytes"),
	}
	for r := range rt.ranks {
		rt.ranks[r] = rt.run.Child(fmt.Sprintf("rank%d", r))
	}
	return rt
}

// rank returns rank r's span (nil when disabled).
func (rt runTel) rank(r int) *telemetry.Span {
	if rt.ranks == nil {
		return nil
	}
	return rt.ranks[r]
}

// sent records a phase-1 or phase-2 ghost message of n payload bytes.
func (rt runTel) sent(phase2 bool, n int) {
	if phase2 {
		rt.p2Msgs.Inc()
		rt.p2Bytes.Add(int64(n))
	} else {
		rt.p1Msgs.Inc()
		rt.p1Bytes.Add(int64(n))
	}
}

// finish ends every rank span and the run span.
func (rt runTel) finish() {
	for _, sp := range rt.ranks {
		sp.End()
	}
	rt.run.End()
}

// Ratio returns the global compression ratio.
func (r Result) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.CompressedBytes)
}

// ThroughputMBps returns the aggregate compression throughput implied by
// the virtual makespan, in MB/s.
func (r Result) ThroughputMBps() float64 {
	s := r.Stats.Makespan.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.RawBytes) / 1e6 / s
}

// Message tags: phase-1 ghosts carry the sender's side index; phase-2
// ghosts are offset by 10.
const phase2TagOffset = 10

// opposite2D maps a side to the side seen by the neighbor across it.
func opposite(side int) int {
	if side%2 == 0 {
		return side + 1
	}
	return side - 1
}

// CompressDistributed2D compresses f on a simulated PX×PY machine.
func CompressDistributed2D(f *field.Field2D, tr fixed.Transform, opts core.Options,
	grid Grid2D, strat Strategy, mcfg mpi.Config) (Result, error) {

	if grid.Ranks() < 1 {
		return Result{}, errGrid
	}
	xs, err := partition(f.NX, grid.PX)
	if err != nil {
		return Result{}, err
	}
	ys, err := partition(f.NY, grid.PY)
	if err != nil {
		return Result{}, err
	}
	mcfg.Ranks = grid.Ranks()
	if mcfg.Tel == nil {
		mcfg.Tel = opts.Tel
	}
	rt := newRunTel(mcfg.Tel, "parallel.compress2d", grid.Ranks())

	blobs := make([][]byte, grid.Ranks())
	errs := make([]error, grid.Ranks())
	stats := make([]core.Stats, grid.Ranks())

	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		px := c.Rank % grid.PX
		py := c.Rank / grid.PX
		sx, sy := xs[px], ys[py]
		bu := make([]float32, sx.size*sy.size)
		bv := make([]float32, sx.size*sy.size)
		for j := 0; j < sy.size; j++ {
			copy(bu[j*sx.size:], f.U[(sy.start+j)*f.NX+sx.start:][:sx.size])
			copy(bv[j*sx.size:], f.V[(sy.start+j)*f.NX+sx.start:][:sx.size])
		}
		blk := core.Block2D{
			NX: sx.size, NY: sy.size, U: bu, V: bv,
			Transform: tr, Opts: opts,
			GlobalX0: sx.start, GlobalY0: sy.start,
			GlobalNX: f.NX, GlobalNY: f.NY,
		}
		blk.Opts.Tel = mcfg.Tel
		blk.Opts.TelSpan = rt.rank(c.Rank)
		nb := [4]int{-1, -1, -1, -1}
		if px > 0 {
			nb[core.SideMinX] = c.Rank - 1
		}
		if px < grid.PX-1 {
			nb[core.SideMaxX] = c.Rank + 1
		}
		if py > 0 {
			nb[core.SideMinY] = c.Rank - grid.PX
		}
		if py < grid.PY-1 {
			nb[core.SideMaxY] = c.Rank + grid.PX
		}
		for s, r := range nb {
			if r >= 0 && strat != Naive {
				blk.Neighbor[s] = true
			}
		}
		switch strat {
		case LosslessBorders:
			blk.LosslessBorder = true
		case RatioOriented:
			blk.TwoPhase = true
		}

		enc, err := core.NewEncoder2D(blk)
		if err != nil {
			errs[c.Rank] = err
			return
		}

		if strat != RatioOriented {
			var blob []byte
			c.Time(func() {
				enc.Run()
				blob, err = enc.Finish()
			})
			blobs[c.Rank], errs[c.Rank] = blob, err
			stats[c.Rank] = enc.Stats()
			return
		}

		// Phase-1 exchange: original border values to every neighbor.
		// Exchange spans report virtual time (clock advance across the
		// exchange), since the data movement itself is simulated.
		x0 := c.Elapsed()
		for s, r := range nb {
			if r < 0 {
				continue
			}
			u, v := enc.BorderLine(s)
			vals := append(u, v...)
			rt.sent(false, 8*len(vals))
			c.SendInt64s(r, s, vals)
		}
		for s, r := range nb {
			if r < 0 {
				continue
			}
			vals := c.RecvInt64s(r, opposite(s))
			half := len(vals) / 2
			if err := enc.SetGhostLine(s, vals[:half], vals[half:]); err != nil {
				errs[c.Rank] = err
				return
			}
		}
		rt.rank(c.Rank).AddChild("ghost-exchange-p1", c.Elapsed()-x0)
		c.Time(func() {
			enc.Prepare()
			enc.RunPhase1()
		})
		// Phase-2 exchange: decompressed min borders flow to min-side
		// neighbors, becoming their max-side ghosts.
		x1 := c.Elapsed()
		for _, s := range [2]int{core.SideMinX, core.SideMinY} {
			if r := nb[s]; r >= 0 {
				u, v := enc.BorderLine(s)
				vals := append(u, v...)
				rt.sent(true, 8*len(vals))
				c.SendInt64s(r, phase2TagOffset+s, vals)
			}
		}
		for _, s := range [2]int{core.SideMaxX, core.SideMaxY} {
			if r := nb[s]; r >= 0 {
				vals := c.RecvInt64s(r, phase2TagOffset+opposite(s))
				half := len(vals) / 2
				if err := enc.SetGhostLine(s, vals[:half], vals[half:]); err != nil {
					errs[c.Rank] = err
					return
				}
			}
		}
		rt.rank(c.Rank).AddChild("ghost-exchange-p2", c.Elapsed()-x1)
		var blob []byte
		var ferr error
		c.Time(func() {
			enc.RunPhase2()
			blob, ferr = enc.Finish()
		})
		blobs[c.Rank], errs[c.Rank] = blob, ferr
		stats[c.Rank] = enc.Stats()
	})
	rt.finish()

	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Blobs: blobs, Stats: st, RawBytes: int64(len(f.U)+len(f.V)) * 4}
	for _, b := range blobs {
		res.CompressedBytes += int64(len(b))
	}
	for _, s := range stats {
		res.EncStats.Add(s)
	}
	return res, nil
}

// DecompressDistributed2D decodes the per-rank blobs on the simulated
// machine and reassembles the global field. The returned stats carry the
// decompression makespan.
func DecompressDistributed2D(blobs [][]byte, grid Grid2D, nx, ny int, mcfg mpi.Config) (*field.Field2D, mpi.Stats, error) {
	xs, err := partition(nx, grid.PX)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	ys, err := partition(ny, grid.PY)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	out := field.NewField2D(nx, ny)
	errs := make([]error, grid.Ranks())
	mcfg.Ranks = grid.Ranks()
	rt := newRunTel(mcfg.Tel, "parallel.decompress2d", grid.Ranks())
	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		px := c.Rank % grid.PX
		py := c.Rank / grid.PX
		sx, sy := xs[px], ys[py]
		var bf *field.Field2D
		var err error
		d := c.Time(func() {
			bf, err = core.Decompress2D(blobs[c.Rank])
		})
		rt.rank(c.Rank).AddChild("decode", d)
		if err != nil {
			errs[c.Rank] = err
			return
		}
		for j := 0; j < sy.size; j++ {
			copy(out.U[(sy.start+j)*nx+sx.start:][:sx.size], bf.U[j*sx.size:])
			copy(out.V[(sy.start+j)*nx+sx.start:][:sx.size], bf.V[j*sx.size:])
		}
	})
	rt.finish()
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return out, st, nil
}
