package parallel

import (
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// CompressDistributed2D compresses f on a simulated PX×PY machine.
func CompressDistributed2D(f *field.Field2D, tr fixed.Transform, opts core.Options,
	grid Grid2D, strat Strategy, mcfg mpi.Config) (Result, error) {

	if grid.Ranks() < 1 {
		return Result{}, errGrid
	}
	xs, err := partition(f.NX, grid.PX)
	if err != nil {
		return Result{}, err
	}
	ys, err := partition(f.NY, grid.PY)
	if err != nil {
		return Result{}, err
	}
	rawBytes := int64(len(f.U)+len(f.V)) * 4
	return compressDistributed("2d", 2, [3]int{grid.PX, grid.PY, 1}, rawBytes, opts, strat, mcfg,
		func(p [3]int, o core.Options, neighbor [6]bool) (blockEncoder, error) {
			sx, sy := xs[p[0]], ys[p[1]]
			bu := make([]float32, sx.size*sy.size)
			bv := make([]float32, sx.size*sy.size)
			for j := 0; j < sy.size; j++ {
				copy(bu[j*sx.size:], f.U[(sy.start+j)*f.NX+sx.start:][:sx.size])
				copy(bv[j*sx.size:], f.V[(sy.start+j)*f.NX+sx.start:][:sx.size])
			}
			blk := core.Block2D{
				NX: sx.size, NY: sy.size, U: bu, V: bv,
				Transform: tr, Opts: o,
				GlobalX0: sx.start, GlobalY0: sy.start,
				GlobalNX: f.NX, GlobalNY: f.NY,
				LosslessBorder: strat == LosslessBorders,
				TwoPhase:       strat == RatioOriented,
			}
			copy(blk.Neighbor[:], neighbor[:core.SideMaxY+1])
			return core.NewEncoder2D(blk)
		})
}

// DecompressDistributed2D decodes the per-rank blobs on the simulated
// machine and reassembles the global field. The returned stats carry the
// decompression makespan.
func DecompressDistributed2D(blobs [][]byte, grid Grid2D, nx, ny int, mcfg mpi.Config) (*field.Field2D, mpi.Stats, error) {
	xs, err := partition(nx, grid.PX)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	ys, err := partition(ny, grid.PY)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	out := field.NewField2D(nx, ny)
	st, err := decompressDistributed("2d", [3]int{grid.PX, grid.PY, 1}, mcfg,
		func(c *mpi.Comm, p [3]int, span *telemetry.Span) error {
			sx, sy := xs[p[0]], ys[p[1]]
			var bf *field.Field2D
			var err error
			d := c.Time(func() {
				bf, err = core.Decompress2D(blobs[c.Rank])
			})
			span.AddChild("decode", d)
			if err != nil {
				return err
			}
			for j := 0; j < sy.size; j++ {
				copy(out.U[(sy.start+j)*nx+sx.start:][:sx.size], bf.U[j*sx.size:])
				copy(out.V[(sy.start+j)*nx+sx.start:][:sx.size], bf.V[j*sx.size:])
			}
			return nil
		})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
