package parallel

import (
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
	"repro/internal/safedim"
	"repro/internal/telemetry"
)

// CompressDistributed2D compresses f on a simulated PX×PY machine.
func CompressDistributed2D(f *field.Field2D, tr fixed.Transform, opts core.Options,
	grid Grid2D, strat Strategy, mcfg mpi.Config) (Result, error) {

	if grid.Ranks() < 1 {
		return Result{}, errGrid
	}
	xs, err := Partition(f.NX, grid.PX)
	if err != nil {
		return Result{}, err
	}
	ys, err := Partition(f.NY, grid.PY)
	if err != nil {
		return Result{}, err
	}
	rawBytes := int64(len(f.U)+len(f.V)) * 4
	return compressDistributed("2d", 2, [3]int{grid.PX, grid.PY, 1}, rawBytes, opts, strat, mcfg,
		func(p [3]int, o core.Options, neighbor [6]bool) (blockEncoder, error) {
			sx, sy := xs[p[0]], ys[p[1]]
			n := safedim.MustProduct(sx.Size, sy.Size)
			bu := make([]float32, n)
			bv := make([]float32, n)
			for j := 0; j < sy.Size; j++ {
				copy(bu[j*sx.Size:], f.U[(sy.Start+j)*f.NX+sx.Start:][:sx.Size])
				copy(bv[j*sx.Size:], f.V[(sy.Start+j)*f.NX+sx.Start:][:sx.Size])
			}
			blk := core.Block2D{
				NX: sx.Size, NY: sy.Size, U: bu, V: bv,
				Transform: tr, Opts: o,
				GlobalX0: sx.Start, GlobalY0: sy.Start,
				GlobalNX: f.NX, GlobalNY: f.NY,
				LosslessBorder: strat == LosslessBorders,
				TwoPhase:       strat == RatioOriented,
			}
			copy(blk.Neighbor[:], neighbor[:core.SideMaxY+1])
			return core.NewEncoder2D(blk)
		})
}

// DecompressDistributed2D decodes the per-rank blobs on the simulated
// machine and reassembles the global field. The returned stats carry the
// decompression makespan.
func DecompressDistributed2D(blobs [][]byte, grid Grid2D, nx, ny int, mcfg mpi.Config) (*field.Field2D, mpi.Stats, error) {
	xs, err := Partition(nx, grid.PX)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	ys, err := Partition(ny, grid.PY)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	out := field.NewField2D(nx, ny)
	st, err := decompressDistributed("2d", [3]int{grid.PX, grid.PY, 1}, mcfg,
		func(c *mpi.Comm, p [3]int, span *telemetry.Span) error {
			sx, sy := xs[p[0]], ys[p[1]]
			var bf *field.Field2D
			var err error
			d := c.Time(func() {
				bf, err = core.Decompress2D(blobs[c.Rank])
			})
			span.AddChild("decode", d)
			if err != nil {
				return err
			}
			for j := 0; j < sy.Size; j++ {
				copy(out.U[(sy.Start+j)*nx+sx.Start:][:sx.Size], bf.U[j*sx.Size:])
				copy(out.V[(sy.Start+j)*nx+sx.Start:][:sx.Size], bf.V[j*sx.Size:])
			}
			return nil
		})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
