package parallel

import (
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
)

// Result summarizes a distributed compression run.
type Result struct {
	// Blobs holds the per-rank compressed blocks (rank order).
	Blobs [][]byte
	// RawBytes and CompressedBytes give the global compression ratio.
	RawBytes, CompressedBytes int64
	// Stats carries the simulated-run timing (makespan = compression
	// wall time on the virtual machine) and communication volume.
	Stats mpi.Stats
}

// Ratio returns the global compression ratio.
func (r Result) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.CompressedBytes)
}

// ThroughputMBps returns the aggregate compression throughput implied by
// the virtual makespan, in MB/s.
func (r Result) ThroughputMBps() float64 {
	s := r.Stats.Makespan.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.RawBytes) / 1e6 / s
}

// Message tags: phase-1 ghosts carry the sender's side index; phase-2
// ghosts are offset by 10.
const phase2TagOffset = 10

// opposite2D maps a side to the side seen by the neighbor across it.
func opposite(side int) int {
	if side%2 == 0 {
		return side + 1
	}
	return side - 1
}

// CompressDistributed2D compresses f on a simulated PX×PY machine.
func CompressDistributed2D(f *field.Field2D, tr fixed.Transform, opts core.Options,
	grid Grid2D, strat Strategy, mcfg mpi.Config) (Result, error) {

	if grid.Ranks() < 1 {
		return Result{}, errGrid
	}
	xs, err := partition(f.NX, grid.PX)
	if err != nil {
		return Result{}, err
	}
	ys, err := partition(f.NY, grid.PY)
	if err != nil {
		return Result{}, err
	}
	mcfg.Ranks = grid.Ranks()

	blobs := make([][]byte, grid.Ranks())
	errs := make([]error, grid.Ranks())

	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		px := c.Rank % grid.PX
		py := c.Rank / grid.PX
		sx, sy := xs[px], ys[py]
		bu := make([]float32, sx.size*sy.size)
		bv := make([]float32, sx.size*sy.size)
		for j := 0; j < sy.size; j++ {
			copy(bu[j*sx.size:], f.U[(sy.start+j)*f.NX+sx.start:][:sx.size])
			copy(bv[j*sx.size:], f.V[(sy.start+j)*f.NX+sx.start:][:sx.size])
		}
		blk := core.Block2D{
			NX: sx.size, NY: sy.size, U: bu, V: bv,
			Transform: tr, Opts: opts,
			GlobalX0: sx.start, GlobalY0: sy.start,
			GlobalNX: f.NX, GlobalNY: f.NY,
		}
		nb := [4]int{-1, -1, -1, -1}
		if px > 0 {
			nb[core.SideMinX] = c.Rank - 1
		}
		if px < grid.PX-1 {
			nb[core.SideMaxX] = c.Rank + 1
		}
		if py > 0 {
			nb[core.SideMinY] = c.Rank - grid.PX
		}
		if py < grid.PY-1 {
			nb[core.SideMaxY] = c.Rank + grid.PX
		}
		for s, r := range nb {
			if r >= 0 && strat != Naive {
				blk.Neighbor[s] = true
			}
		}
		switch strat {
		case LosslessBorders:
			blk.LosslessBorder = true
		case RatioOriented:
			blk.TwoPhase = true
		}

		enc, err := core.NewEncoder2D(blk)
		if err != nil {
			errs[c.Rank] = err
			return
		}

		if strat != RatioOriented {
			var blob []byte
			c.Time(func() {
				enc.Run()
				blob, err = enc.Finish()
			})
			blobs[c.Rank], errs[c.Rank] = blob, err
			return
		}

		// Phase-1 exchange: original border values to every neighbor.
		for s, r := range nb {
			if r < 0 {
				continue
			}
			u, v := enc.BorderLine(s)
			c.SendInt64s(r, s, append(u, v...))
		}
		for s, r := range nb {
			if r < 0 {
				continue
			}
			vals := c.RecvInt64s(r, opposite(s))
			half := len(vals) / 2
			if err := enc.SetGhostLine(s, vals[:half], vals[half:]); err != nil {
				errs[c.Rank] = err
				return
			}
		}
		c.Time(func() {
			enc.Prepare()
			enc.RunPhase1()
		})
		// Phase-2 exchange: decompressed min borders flow to min-side
		// neighbors, becoming their max-side ghosts.
		for _, s := range [2]int{core.SideMinX, core.SideMinY} {
			if r := nb[s]; r >= 0 {
				u, v := enc.BorderLine(s)
				c.SendInt64s(r, phase2TagOffset+s, append(u, v...))
			}
		}
		for _, s := range [2]int{core.SideMaxX, core.SideMaxY} {
			if r := nb[s]; r >= 0 {
				vals := c.RecvInt64s(r, phase2TagOffset+opposite(s))
				half := len(vals) / 2
				if err := enc.SetGhostLine(s, vals[:half], vals[half:]); err != nil {
					errs[c.Rank] = err
					return
				}
			}
		}
		var blob []byte
		var ferr error
		c.Time(func() {
			enc.RunPhase2()
			blob, ferr = enc.Finish()
		})
		blobs[c.Rank], errs[c.Rank] = blob, ferr
	})

	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Blobs: blobs, Stats: st, RawBytes: int64(len(f.U)+len(f.V)) * 4}
	for _, b := range blobs {
		res.CompressedBytes += int64(len(b))
	}
	return res, nil
}

// DecompressDistributed2D decodes the per-rank blobs on the simulated
// machine and reassembles the global field. The returned stats carry the
// decompression makespan.
func DecompressDistributed2D(blobs [][]byte, grid Grid2D, nx, ny int, mcfg mpi.Config) (*field.Field2D, mpi.Stats, error) {
	xs, err := partition(nx, grid.PX)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	ys, err := partition(ny, grid.PY)
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	out := field.NewField2D(nx, ny)
	errs := make([]error, grid.Ranks())
	mcfg.Ranks = grid.Ranks()
	st := mpi.Run(mcfg, func(c *mpi.Comm) {
		px := c.Rank % grid.PX
		py := c.Rank / grid.PX
		sx, sy := xs[px], ys[py]
		var bf *field.Field2D
		var err error
		c.Time(func() {
			bf, err = core.Decompress2D(blobs[c.Rank])
		})
		if err != nil {
			errs[c.Rank] = err
			return
		}
		for j := 0; j < sy.size; j++ {
			copy(out.U[(sy.start+j)*nx+sx.start:][:sx.size], bf.U[j*sx.size:])
			copy(out.V[(sy.start+j)*nx+sx.start:][:sx.size], bf.V[j*sx.size:])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return out, st, nil
}
