package parallel

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// TestDistributedGhostStragglerRecovers injects delivery delays into the
// ghost exchanges and checks the deadline/retry policy rides them out:
// the run completes, produces the same bytes as a clean run, and the
// stragglers show up in telemetry.
func TestDistributedGhostStragglerRecovers(t *testing.T) {
	f := smooth2D(7, 48, 48)
	tr, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Tau: 0.01}
	grid := Grid2D{PX: 2, PY: 2}
	clean, err := CompressDistributed2D(f, tr, opts, grid, RatioOriented, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	inj := faultinject.New(faultinject.Config{
		Seed:  5,
		Prob:  [faultinject.NumKinds]float64{faultinject.KindDelay: 0.5},
		Delay: 15 * time.Millisecond,
	})
	res, err := CompressDistributed2D(f, tr, opts, grid, RatioOriented, mpi.Config{
		Tel: tel, Inject: inj,
		RecvTimeout: 5 * time.Millisecond, RecvRetries: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fired(faultinject.KindDelay) == 0 {
		t.Fatal("no delays fired at p=0.5")
	}
	if tel.Counter("mpi.stragglers").Value() == 0 {
		t.Fatal("stragglers not recorded")
	}
	for r := range clean.Blobs {
		if string(res.Blobs[r]) != string(clean.Blobs[r]) {
			t.Fatalf("rank %d bytes differ after straggler recovery", r)
		}
	}
}

// TestDistributedGhostTimeoutFails pins the unrecoverable case: a delay
// past the full deadline budget surfaces as a typed *mpi.TimeoutError
// from the driver, not a hang and not a bad archive.
func TestDistributedGhostTimeoutFails(t *testing.T) {
	f := smooth2D(7, 48, 48)
	tr, err := GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed:  9,
		Prob:  [faultinject.NumKinds]float64{faultinject.KindDelay: 1},
		Delay: 200 * time.Millisecond,
	})
	_, err = CompressDistributed2D(f, tr, core.Options{Tau: 0.01}, Grid2D{PX: 2, PY: 2},
		RatioOriented, mpi.Config{
			Inject:      inj,
			RecvTimeout: 2 * time.Millisecond, RecvRetries: 1,
		})
	var te *mpi.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *mpi.TimeoutError, got %v", err)
	}
}
