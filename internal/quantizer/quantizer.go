// Package quantizer implements the linear-scaling quantizer with
// per-vertex error bounds and the power-of-two bound quantization of the
// coupled compression scheme.
//
// A value v with prediction p and (integer, fixed-point) error bound ξ is
// coded as q = ⌊(v − p + ξ) / (2ξ+1)⌋; the reconstruction p + q·(2ξ+1)
// differs from v by at most ξ. Derived bounds are snapped to τ′/2^k so
// only the small exponent k has to be stored for the decompressor — which
// therefore never needs to re-derive bounds (this is what makes
// decompression topology-free and fast).
package quantizer

// Radius bounds the magnitude of quantization codes; larger residuals are
// escaped to the literal stream.
const Radius = 1 << 15

// The bound grid is {τ′·2^e : −MaxBoundDown ≤ e ≤ MaxBoundUp}. Exponents
// below zero (bounds tighter than τ′) arise from the derivation; exponents
// above zero arise from the sign-uniformity relaxation and from
// speculative compression, both of which deliberately exceed the user
// bound for data that provably carries no topology.
const (
	MaxBoundDown = 40 // bounds down to τ′/2^40
	MaxBoundUp   = 20 // bounds up to τ′·2^20
)

// LosslessSym is the bound-symbol sentinel meaning "error bound zero"
// (the vertex must be reconstructed exactly).
const LosslessSym uint8 = 0xFF

// BoundSym snaps a derived bound xi to the largest grid bound ≤ xi and
// returns its symbol. xi ≤ 0, or xi below the smallest grid bound, yields
// the lossless sentinel.
func BoundSym(xi, tau int64) (sym uint8, snapped int64) {
	if xi <= 0 || tau <= 0 {
		return LosslessSym, 0
	}
	for e := -MaxBoundUp; e <= MaxBoundDown; e++ {
		b := boundAt(e, tau)
		if b > 0 && b <= xi {
			return uint8(e + MaxBoundUp), b
		}
	}
	return LosslessSym, 0
}

// BoundFromSym reconstructs the snapped bound from its symbol.
func BoundFromSym(sym uint8, tau int64) int64 {
	if sym == LosslessSym || int(sym) > MaxBoundUp+MaxBoundDown {
		return 0
	}
	return boundAt(int(sym)-MaxBoundUp, tau)
}

// boundAt returns τ′·2^(−e): right shifts for e ≥ 0, left shifts for the
// relaxation range.
func boundAt(e int, tau int64) int64 {
	if e >= 0 {
		return tau >> uint(e)
	}
	return tau << uint(-e)
}

// Quantize codes value against pred with bound xi (>= 0). It returns the
// quantization code, the reconstructed value, and whether the code is
// representable (|code| < Radius). When ok is false the caller must escape
// to the literal stream.
func Quantize(value, pred, xi int64) (code, recon int64, ok bool) {
	bin := 2*xi + 1
	diff := value - pred
	code = floorDiv(diff+xi, bin)
	if code <= -Radius || code >= Radius {
		return 0, value, false
	}
	recon = pred + code*bin
	if recon-value > xi || value-recon > xi {
		// Defensive: cannot happen with exact integer arithmetic.
		return 0, value, false
	}
	return code, recon, true
}

// Reconstruct recomputes the value from a quantization code (the
// decompressor side of Quantize).
func Reconstruct(code, pred, xi int64) int64 {
	return pred + code*(2*xi+1)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
