package quantizer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeErrorBound(t *testing.T) {
	f := func(value, pred int32, xiRaw uint16) bool {
		xi := int64(xiRaw % 1000)
		code, recon, ok := Quantize(int64(value), int64(pred), xi)
		if !ok {
			return true // escaped to literal, nothing to check
		}
		err := recon - int64(value)
		if err < 0 {
			err = -err
		}
		if err > xi {
			return false
		}
		// Decoder agreement.
		return Reconstruct(code, int64(pred), xi) == recon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeLossless(t *testing.T) {
	// xi = 0 must reproduce the value exactly.
	for _, d := range []int64{0, 1, -1, 100, -100, Radius - 1, -(Radius - 1)} {
		code, recon, ok := Quantize(1000+d, 1000, 0)
		if !ok {
			t.Fatalf("diff %d should be representable", d)
		}
		if recon != 1000+d || code != d {
			t.Fatalf("lossless quantization wrong for diff %d: code=%d recon=%d", d, code, recon)
		}
	}
}

func TestQuantizeEscape(t *testing.T) {
	// Residual too large for the code alphabet → literal escape.
	_, recon, ok := Quantize(1<<20, 0, 0)
	if ok {
		t.Fatal("expected escape")
	}
	if recon != 1<<20 {
		t.Fatal("escape must return the exact value")
	}
}

func TestQuantizeNegativeResiduals(t *testing.T) {
	code, recon, ok := Quantize(-50, 50, 10)
	if !ok {
		t.Fatal("should quantize")
	}
	if d := recon - (-50); d > 10 || d < -10 {
		t.Fatalf("error %d out of bound", d)
	}
	if Reconstruct(code, 50, 10) != recon {
		t.Fatal("reconstruct mismatch")
	}
}

func TestBoundSymGrid(t *testing.T) {
	tau := int64(1 << 12)
	cases := []struct {
		xi          int64
		wantSnapped int64
	}{
		{tau, tau},
		{tau - 1, tau / 2},
		{tau / 2, tau / 2},
		{tau/2 - 1, tau / 4},
		{1, 1},
		{2 * tau, 2 * tau}, // relaxation above τ′
		{3 * tau, 2 * tau}, // snapped down to the grid
		{tau << MaxBoundUp, tau << MaxBoundUp},
		{tau<<MaxBoundUp + 5, tau << MaxBoundUp}, // capped at the top of the grid
	}
	for _, c := range cases {
		sym, snapped := BoundSym(c.xi, tau)
		if snapped != c.wantSnapped {
			t.Errorf("BoundSym(%d) snapped = %d, want %d", c.xi, snapped, c.wantSnapped)
		}
		if got := BoundFromSym(sym, tau); got != snapped {
			t.Errorf("BoundFromSym(%d) = %d, want %d", sym, got, snapped)
		}
	}
}

func TestBoundSymLossless(t *testing.T) {
	tau := int64(100)
	for _, xi := range []int64{0, -5} {
		sym, snapped := BoundSym(xi, tau)
		if sym != LosslessSym || snapped != 0 {
			t.Errorf("BoundSym(%d) = (%d, %d)", xi, sym, snapped)
		}
	}
	// Tiny bound below τ′/2^MaxBoundDown degrades to lossless.
	sym, _ := BoundSym(1, 1<<50)
	if sym != LosslessSym {
		t.Errorf("tiny relative bound should be lossless, got sym %d", sym)
	}
	if BoundFromSym(LosslessSym, tau) != 0 {
		t.Error("BoundFromSym(LosslessSym) must be 0")
	}
	if BoundFromSym(200, tau) != 0 {
		t.Error("out-of-range symbol must decode to 0")
	}
}

func TestBoundSymNeverExceedsDerived(t *testing.T) {
	// The snapped bound must never exceed the derived bound: that is the
	// soundness condition of the whole scheme.
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 10000; i++ {
		tau := rng.Int63n(1<<20) + 1
		xi := rng.Int63n(1 << 24)
		sym, snapped := BoundSym(xi, tau)
		if snapped > xi && xi > 0 {
			t.Fatalf("snapped %d > derived %d (tau %d)", snapped, xi, tau)
		}
		if got := BoundFromSym(sym, tau); got != snapped {
			t.Fatalf("symbol round trip: %d != %d", got, snapped)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {-1, 5, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
