package bitstream

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBit(1)
	w.WriteBits(42, 7)
	data := w.Bytes()
	r := NewReader(data)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("got %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xFFFF {
		t.Errorf("got %x", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Errorf("got %d", v)
	}
	if v, _ := r.ReadBits(7); v != 42 {
		t.Errorf("got %d", v)
	}
}

func TestRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		widths := make([]uint, n)
		vals := make([]uint64, n)
		var w Writer
		for i := 0; i < n; i++ {
			widths[i] = uint(rng.Intn(57) + 1)
			vals[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShortStream(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(16); !errors.Is(err, ErrShortStream) {
		t.Fatalf("expected ErrShortStream, got %v", err)
	}
}

func TestBitLenAndReset(t *testing.T) {
	var w Writer
	w.WriteBits(1, 5)
	if w.BitLen() != 5 {
		t.Errorf("BitLen = %d", w.BitLen())
	}
	w.WriteBits(0, 3)
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWritePanicsOnWideWrite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Writer
	w.WriteBits(0, 60)
}
