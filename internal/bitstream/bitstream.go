// Package bitstream provides LSB-first bit-level readers and writers used
// by the Huffman coder and the ZFP-like bit-plane codec.
package bitstream

import (
	"errors"
	"fmt"
)

// Writer accumulates bits LSB-first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64
	nacc uint
}

// WriteBits writes the low n bits of v (n <= 57).
//
// The width limit is an encoder-side invariant: every caller passes a
// compile-time or clamped width, never stream-derived data, so exceeding
// it is a programming error and panics rather than returning an error.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 57 {
		panic("bitstream: WriteBits supports at most 57 bits per call")
	}
	w.acc |= (v & ((1 << n) - 1)) << w.nacc
	w.nacc += n
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// WriteBit writes a single bit.
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// Bytes flushes any partial byte and returns the accumulated buffer.
func (w *Writer) Bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

// Len returns the number of complete bytes written so far (excluding a
// pending partial byte).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
}

// ErrShortStream is returned when a read runs past the end of the data.
var ErrShortStream = errors.New("bitstream: read past end of stream")

// ErrWidth is returned when a read requests more bits than one call
// supports — on the decode side the width can come from a corrupt
// stream, so this is an error, not a panic.
var ErrWidth = errors.New("bitstream: at most 57 bits per read")

// Reader reads bits LSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // next byte index
	acc  uint64
	nacc uint
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data}
}

// ReadBits reads n bits (n <= 57); wider requests return ErrWidth.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		return 0, ErrWidth
	}
	for r.nacc < n {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("%w (wanted %d bits)", ErrShortStream, n)
		}
		r.acc |= uint64(r.buf[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
	v := r.acc & ((1 << n) - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}
