package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/flightrec"
	"repro/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServeEndpoints(t *testing.T) {
	col := telemetry.New()
	run := col.Span("shm.compress2d")
	for i := 0; i < 3; i++ {
		run.Child("slab").End()
	}
	run.End()
	col.Counter("shm.compress2d.slab.retries").Add(1)
	col.Histogram("core.2d.bound_exp").Observe(7)

	rec := flightrec.New(64)
	rec.RecordKind(flightrec.KindRetry, "shm.compress2d", 2, 1)
	rec.RecordKind(flightrec.KindDegraded, "shm.compress2d", 2, 3)

	srv, err := Serve("127.0.0.1:0", col, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"topozip_shm_compress2d_slab_retries_total 1",
		"topozip_core_2d_bound_exp_p99 7",
		`topozip_stage_latency_seconds{stage="slab",quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/healthz")
	var health struct {
		OK       bool    `json:"ok"`
		UptimeS  float64 `json:"uptime_s"`
		Recorded uint64  `json:"flightrec_events"`
	}
	if code != http.StatusOK || json.Unmarshal([]byte(body), &health) != nil {
		t.Fatalf("/healthz status %d body %q", code, body)
	}
	if !health.OK || health.Recorded != 2 {
		t.Errorf("health = %+v", health)
	}

	code, body = get(t, base+"/debug/trace")
	if code != http.StatusOK || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/debug/trace status %d body %q", code, body)
	}

	code, body = get(t, base+"/debug/flightrec")
	var dump flightrec.Dump
	if code != http.StatusOK || json.Unmarshal([]byte(body), &dump) != nil {
		t.Fatalf("/debug/flightrec status %d body %q", code, body)
	}
	if dump.Recorded != 2 || len(dump.Events) != 2 || dump.Events[1].Kind != flightrec.KindDegraded {
		t.Errorf("flightrec dump = %+v", dump)
	}

	code, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Errorf("/debug/vars status %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeNilSources(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil collector: status %d body %q", code, body)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz status %d", code)
	}
	if code, body := get(t, base+"/debug/flightrec"); code != http.StatusOK || !strings.Contains(body, `"recorded": 0`) {
		t.Errorf("/debug/flightrec: status %d body %q", code, body)
	}
}

func TestServerNilAndCloseIdempotent(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Error("nil server must report empty address")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The port is released: a fresh bind to the same address succeeds
	// shortly after close.
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv2, err := Serve(srv.Addr(), nil, nil)
		if err == nil {
			srv2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port not released: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
