// Package obs serves the debug/observability HTTP endpoint behind the
// -listen flag of topozip and cpbench: Prometheus metrics, health,
// Chrome trace export, flight-recorder dump, expvar, and pprof. The
// server is read-only — it renders snapshots of the process's collector
// and recorder and never mutates them — and binds only where the
// operator points it (":0" picks a free port, handy for tests and for
// short-lived batch runs that log their address).
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/flightrec"
	"repro/internal/telemetry"
)

// Server is a running debug endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve binds addr and serves the debug endpoint for col and rec (either
// may be nil; the handlers degrade to empty documents). It returns once
// the listener is bound; the HTTP loop runs in a background goroutine.
func Serve(addr string, col *telemetry.Collector, rec *flightrec.Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	s.srv = &http.Server{Handler: Mux(col, rec, s.start), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr is the bound address, e.g. "127.0.0.1:43627".
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Options configures Handler. The zero value serves empty documents and
// reports always-ready.
type Options struct {
	// Col and Rec are the process's collector and flight recorder;
	// either may be nil (handlers degrade to empty documents).
	Col *telemetry.Collector
	Rec *flightrec.Recorder
	// Start anchors the uptime report; the zero time means "now".
	Start time.Time
	// Ready, when non-nil, gates the /healthz readiness verdict: a
	// draining daemon flips it to false so load balancers stop routing
	// new work while in-flight requests finish. /healthz then answers
	// 503 with ok=false. nil means always ready.
	Ready func() bool
}

// Mux builds the debug handler tree with default options. Kept for the
// topozip/cpbench -listen path; daemons with a drain state use Handler.
func Mux(col *telemetry.Collector, rec *flightrec.Recorder, start time.Time) *http.ServeMux {
	return Handler(Options{Col: col, Rec: rec, Start: start})
}

// Handler builds the observability handler tree — /metrics, /healthz,
// /debug/{trace,flightrec,vars,pprof} — for mounting on the caller's own
// server (the topozipd daemon) or behind Serve's standalone listener.
func Handler(o Options) *http.ServeMux {
	if o.Start.IsZero() {
		o.Start = time.Now()
	}
	col, rec, start := o.Col, o.Rec, o.Start
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = col.WritePrometheus(w, "")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ready := o.Ready == nil || o.Ready()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			OK       bool    `json:"ok"`
			Draining bool    `json:"draining"`
			UptimeS  float64 `json:"uptime_s"`
			Recorded uint64  `json:"flightrec_events"`
		}{ready, !ready, time.Since(start).Seconds(), rec.Total()})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = col.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
