// Tracking: the paper's motivating downstream analysis. A vortex drifts
// across the domain over several time steps; each step is compressed
// independently. Topology-agnostic compression can flip detections in
// single steps, splitting the vortex's track into fragments ("broken or
// branched traces"); the critical-point-preserving compressor keeps every
// track intact by construction.
//
// Usage: go run ./examples/tracking [-steps 12] [-n 48]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/tracking"
)

func main() {
	steps := flag.Int("steps", 12, "number of time steps")
	n := flag.Int("n", 48, "grid side")
	flag.Parse()

	fields := sequence(*steps, *n)
	tr, err := fixed.Fit(fields[0].U, fields[0].V)
	if err != nil {
		log.Fatal(err)
	}
	tau := 0.05 * rangeOf(fields[0].U, fields[0].V)

	var orig, ours, generic [][]cp.Point
	var ourBytes, genBytes, raw int
	for _, f := range fields {
		raw += 4 * 2 * len(f.U)
		orig = append(orig, cp.DetectField2D(f, tr))

		blob, err := core.CompressField2D(f, tr, core.Options{Tau: tau, Spec: core.ST2})
		if err != nil {
			log.Fatal(err)
		}
		ourBytes += len(blob)
		dec, err := core.Decompress2D(blob)
		if err != nil {
			log.Fatal(err)
		}
		ours = append(ours, cp.DetectField2D(dec, tr))

		// Generic compressor with the same error bound — pointwise error
		// control without topology awareness.
		gblob, err := baselines.SZLike{Abs: tau * 2}.Compress2D(f)
		if err != nil {
			log.Fatal(err)
		}
		genBytes += len(gblob)
		gdec, err := baselines.SZLike{}.Decompress2D(gblob)
		if err != nil {
			log.Fatal(err)
		}
		generic = append(generic, cp.DetectField2D(gdec, tr))
	}

	opts := tracking.Options{Radius: 3, MatchType: true}
	base := tracking.Summarize(tracking.Build(orig, opts))
	fmt.Printf("original:  %3d tracks, longest %d steps, %d singletons\n",
		base.Tracks, base.MaxLen, base.Singleton)

	rep := tracking.Compare(orig, ours, opts)
	fmt.Printf("ours ST2:  %3d tracks, longest %d steps, %d singletons   (ratio %.1fx)\n",
		rep.Decompressed.Tracks, rep.Decompressed.MaxLen, rep.Decompressed.Singleton,
		float64(raw)/float64(ourBytes))
	if rep.ExtraTracks != 0 {
		log.Fatal("the preserving compressor must not break tracks")
	}

	grep := tracking.Compare(orig, generic, opts)
	fmt.Printf("SZ-like:   %3d tracks, longest %d steps, %d singletons   (ratio %.1fx)\n",
		grep.Decompressed.Tracks, grep.Decompressed.MaxLen, grep.Decompressed.Singleton,
		float64(raw)/float64(genBytes))
	switch {
	case grep.ExtraTracks > 0:
		fmt.Printf("the generic compressor split the motion into %d extra tracks — the broken-trace failure the paper motivates\n",
			grep.ExtraTracks)
	case grep.ExtraTracks < 0 || grep.Decompressed.MaxLen != base.MaxLen:
		fmt.Println("the generic compressor destroyed or merged tracks — the temporal topology is gone")
	default:
		fmt.Println("(the generic compressor happened to preserve the tracks at this scale)")
	}
}

// sequence builds a drifting vortex plus saddle background.
func sequence(steps, n int) []*field.Field2D {
	out := make([]*field.Field2D, steps)
	for t := range out {
		f := field.NewField2D(n, n)
		cx := 5 + float64(t)*float64(n-10)/float64(steps)
		cy := float64(n)/2 + 3*math.Sin(float64(t)*0.7)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x, y := float64(i), float64(j)
				idx := f.Idx(i, j)
				// Vortex with finite core plus a weak cellular background.
				dx, dy := x-cx, y-cy
				r2 := dx*dx + dy*dy
				s := math.Exp(-r2 / 64)
				u := -dy*s + 0.12*math.Sin(2*math.Pi*x/float64(n)*3)
				v := dx*s + 0.12*math.Cos(2*math.Pi*y/float64(n)*3)
				f.U[idx] = float32(u)
				f.V[idx] = float32(v)
			}
		}
		out[t] = f
	}
	return out
}

func rangeOf(comps ...[]float32) float64 {
	var lo, hi float32 = comps[0][0], comps[0][0]
	for _, c := range comps {
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return float64(hi - lo)
}
