// Parallel I/O: the distributed workflow of the paper's Section VI and
// Fig. 9. Compresses a turbulence volume on a simulated message-passing
// machine with both parallelization strategies, verifies that critical
// points survive the domain decomposition (including border cells), and
// reports the modeled write/read times against the vanilla
// no-compression pipeline.
//
// Usage: go run ./examples/parallelio [-block 24] [-grid 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/datagen"
	"repro/internal/iosim"
	"repro/internal/mpi"
	"repro/internal/parallel"
)

func main() {
	block := flag.Int("block", 24, "per-rank block side")
	gridP := flag.Int("grid", 2, "rank grid side (ranks = grid³)")
	flag.Parse()

	n := *block * *gridP
	f := datagen.Turbulence(n, n, n, 1)
	tr, err := parallel.GlobalTransform3D(f)
	if err != nil {
		log.Fatal(err)
	}
	tau := 0.01 * rangeOf(f.U, f.V, f.W)
	orig := cp.DetectField3D(f, tr)
	grid := parallel.Grid3D{PX: *gridP, PY: *gridP, PZ: *gridP}
	ranks := grid.Ranks()
	raw := int64(4 * 3 * len(f.U))
	fmt.Printf("turbulence %d³ on %d simulated ranks, %d critical points\n", n, ranks, len(orig))

	fs := iosim.FileSystem{Aggregate: 100e6, PerNode: 25e6, CoresPerNode: 16, Latency: time.Millisecond}
	vanilla := fs.TransferTime(raw, ranks)
	fmt.Printf("%-18s ratio  1.00   write %-12v read %v\n", "vanilla", vanilla, vanilla)

	for _, strat := range []parallel.Strategy{parallel.LosslessBorders, parallel.RatioOriented} {
		res, err := parallel.CompressDistributed3D(f, tr, core.Options{Tau: tau}, grid, strat, mpi.Config{})
		if err != nil {
			log.Fatal(err)
		}
		dec, dst, err := parallel.DecompressDistributed3D(res.Blobs, grid, n, n, n, mpi.Config{})
		if err != nil {
			log.Fatal(err)
		}
		rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
		write := res.Stats.Makespan + fs.TransferTime(res.CompressedBytes, ranks)
		read := fs.TransferTime(res.CompressedBytes, ranks) + dst.Makespan
		fmt.Printf("%-18s ratio %5.2f   write %-12v read %-12v %v  (%d msgs, %d bytes comm)\n",
			strat, res.Ratio(), write.Round(time.Microsecond), read.Round(time.Microsecond),
			rep, res.Stats.Messages, res.Stats.TotalBytes)
		if !rep.Preserved() {
			log.Fatalf("%v lost critical points across rank borders", strat)
		}
	}
	fmt.Println("both strategies preserved every critical point, including border cells ✓")
}

func rangeOf(comps ...[]float32) float64 {
	var lo, hi float32 = comps[0][0], comps[0][0]
	for _, c := range comps {
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return float64(hi - lo)
}
