// Quickstart: compress a small synthetic vector field while preserving
// every critical point, decompress it, and verify the topology.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/field"
	"repro/internal/fixed"
)

func main() {
	// Build a 64×64 field with a few vortices and saddles.
	f := field.NewField2D(64, 64)
	for j := 0; j < 64; j++ {
		for i := 0; i < 64; i++ {
			x := float64(i) / 63 * 4 * math.Pi
			y := float64(j) / 63 * 4 * math.Pi
			idx := f.Idx(i, j)
			f.U[idx] = float32(math.Sin(x) * math.Cos(y))
			f.V[idx] = float32(-math.Cos(x) * math.Sin(y))
		}
	}

	// Ground truth: robust (SoS) critical point extraction.
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		log.Fatal(err)
	}
	orig := cp.DetectField2D(f, tr)
	fmt.Printf("original field: %d critical points\n", len(orig))

	// Compress with the most aggressive speculation target; the critical
	// points are preserved exactly no matter the target.
	blob, _, err := core.Compress2D(f, core.Options{Tau: 0.02, Spec: core.ST4})
	if err != nil {
		log.Fatal(err)
	}
	raw := 4 * (len(f.U) + len(f.V))
	fmt.Printf("compressed %d -> %d bytes (ratio %.1fx)\n", raw, len(blob),
		float64(raw)/float64(len(blob)))

	dec, err := core.Decompress2D(blob)
	if err != nil {
		log.Fatal(err)
	}
	rep := cp.Compare(orig, cp.DetectField2D(dec, tr))
	fmt.Printf("critical points after decompression: %v\n", rep)
	fmt.Printf("PSNR: %.1f dB\n", analysis.PSNR(f.Components(), dec.Components()))
	if !rep.Preserved() {
		log.Fatal("critical points were not preserved!")
	}
	fmt.Println("topology preserved ✓")

	// Show the extracted points with their classified types.
	for i, p := range orig {
		if i >= 6 {
			fmt.Printf("  ... and %d more\n", len(orig)-6)
			break
		}
		fmt.Printf("  cell %5d: %-16s at (%.2f, %.2f)\n", p.Cell, p.Type, p.Pos[0], p.Pos[1])
	}
}
