// Ocean 2D: the workload of the paper's Fig. 5. Generates the synthetic
// ocean current field (gyres + land mask), compresses it under every
// speculation target, verifies preservation, and renders LIC images with
// critical point overlays for visual inspection.
//
// Usage: go run ./examples/ocean2d [-dims 384x288] [-out .]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/datagen"
	"repro/internal/field"
	"repro/internal/fixed"
)

func main() {
	dims := flag.String("dims", "384x288", "grid dimensions")
	out := flag.String("out", ".", "output directory for PPM images")
	flag.Parse()

	var nx, ny int
	if _, err := fmt.Sscanf(*dims, "%dx%d", &nx, &ny); err != nil {
		log.Fatal("bad -dims: ", err)
	}
	f := datagen.Ocean(nx, ny)
	tr, err := fixed.Fit(f.U, f.V)
	if err != nil {
		log.Fatal(err)
	}
	tau := 0.01 * rangeOf(f.U, f.V)
	orig := cp.DetectField2D(f, tr)
	fmt.Printf("ocean %dx%d: %d critical points in the original field\n", nx, ny, len(orig))

	if err := render(f, orig, filepath.Join(*out, "ocean-original.ppm")); err != nil {
		log.Fatal(err)
	}

	raw := 4 * 2 * len(f.U)
	for _, spec := range []core.Speculation{core.NoSpec, core.ST1, core.ST2, core.ST3, core.ST4} {
		blob, err := core.CompressField2D(f, tr, core.Options{Tau: tau, Spec: spec})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := core.Decompress2D(blob)
		if err != nil {
			log.Fatal(err)
		}
		pts := cp.DetectField2D(dec, tr)
		rep := cp.Compare(orig, pts)
		fmt.Printf("%-7s ratio %6.2f  %v\n", spec, float64(raw)/float64(len(blob)), rep)
		if !rep.Preserved() {
			log.Fatalf("%v did not preserve critical points", spec)
		}
		name := filepath.Join(*out, fmt.Sprintf("ocean-%s.ppm", spec))
		if err := render(dec, pts, name); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("LIC renderings written; red=sources, blue=sinks, green=saddles, yellow=centers")
}

// render draws the field as LIC with critical point markers and writes a
// binary PPM.
func render(f *field.Field2D, pts []cp.Point, path string) error {
	img := analysis.LIC(f, 10, 7)
	color := analysis.OverlayCriticalPoints(img, f.NX, f.NY, pts)
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	return analysis.WritePPM(w, color, f.NX, f.NY)
}

func rangeOf(comps ...[]float32) float64 {
	var lo, hi float32 = comps[0][0], comps[0][0]
	for _, c := range comps {
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return float64(hi - lo)
}
