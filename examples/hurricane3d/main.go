// Hurricane 3D: the workload behind the paper's Table VI and Fig. 7.
// Compresses a synthetic tropical-cyclone field, verifies critical point
// preservation, and compares streamlines traced through the original and
// decompressed fields — the quantitative counterpart of the paper's
// visual comparison.
//
// Usage: go run ./examples/hurricane3d [-dims 64x64x32]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/cpsz"
	"repro/internal/datagen"
	"repro/internal/fixed"
)

func main() {
	dims := flag.String("dims", "64x64x32", "grid dimensions")
	flag.Parse()

	var nx, ny, nz int
	if _, err := fmt.Sscanf(*dims, "%dx%dx%d", &nx, &ny, &nz); err != nil {
		log.Fatal("bad -dims: ", err)
	}
	f := datagen.Hurricane(nx, ny, nz)
	tr, err := fixed.Fit(f.U, f.V, f.W)
	if err != nil {
		log.Fatal(err)
	}
	tau := 0.01 * rangeOf(f.U, f.V, f.W)
	orig := cp.DetectField3D(f, tr)
	fmt.Printf("hurricane %dx%dx%d: %d critical points (vortex core and background eddies)\n",
		nx, ny, nz, len(orig))

	// Reference streamlines seeded along the volume diagonal, as in the
	// paper's figures.
	seeds := analysis.DiagonalSeeds3D(f, 10)
	ref := analysis.TraceAll3D(f, seeds, 0.25, 300)
	raw := 4 * 3 * len(f.U)

	// Our compressor at two speculation levels.
	for _, spec := range []core.Speculation{core.NoSpec, core.ST4} {
		blob, err := core.CompressField3D(f, tr, core.Options{Tau: tau, Spec: spec})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := core.Decompress3D(blob)
		if err != nil {
			log.Fatal(err)
		}
		rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
		div := analysis.StreamlineDivergence(ref, analysis.TraceAll3D(dec, seeds, 0.25, 300))
		fmt.Printf("ours %-7s ratio %6.2f  %v  streamline divergence %.4f\n",
			spec, float64(raw)/float64(len(blob)), rep, div)
		if !rep.Preserved() {
			log.Fatal("critical points lost")
		}
	}

	// The cpSZ baseline for comparison.
	blob, err := cpsz.Compress3D(f, cpsz.Options{Rel: 0.05, Scheme: cpsz.Coupled})
	if err != nil {
		log.Fatal(err)
	}
	_, dec, err := cpsz.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
	div := analysis.StreamlineDivergence(ref, analysis.TraceAll3D(dec, seeds, 0.25, 300))
	fmt.Printf("cpSZ coupled ratio %6.2f  %v  streamline divergence %.4f\n",
		float64(raw)/float64(len(blob)), rep, div)
}

func rangeOf(comps ...[]float32) float64 {
	var lo, hi float32 = comps[0][0], comps[0][0]
	for _, c := range comps {
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return float64(hi - lo)
}
