// Isosurface: the Lemma 2 extension — error-bounded compression of a
// scalar field that preserves the marching-cubes topology of chosen
// isosurfaces exactly. This is the "more features expressed by the sign
// of determinants" direction the paper's conclusion announces.
//
// Usage: go run ./examples/isosurface [-dims 96x96x48]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/isosurface"
)

func main() {
	dims := flag.String("dims", "96x96x48", "grid dimensions")
	flag.Parse()
	var nx, ny, nz int
	if _, err := fmt.Sscanf(*dims, "%dx%dx%d", &nx, &ny, &nz); err != nil {
		log.Fatal("bad -dims: ", err)
	}

	// A "temperature" field with nested level sets.
	f := isosurface.NewField(nx, ny, nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := float64(i)/float64(nx-1) - 0.5
				y := float64(j)/float64(ny-1) - 0.5
				z := float64(k)/float64(nz-1) - 0.5
				r := math.Sqrt(x*x + y*y + 2*z*z)
				f.Data[(k*ny+j)*nx+i] = float32(math.Exp(-4*r*r) +
					0.15*math.Sin(9*x)*math.Cos(7*y)*math.Cos(5*z))
			}
		}
	}

	isos := []float64{0.2, 0.5, 0.8}
	blob, err := isosurface.Compress(f, isosurface.Options{Tau: 0.02, Isovalues: isos})
	if err != nil {
		log.Fatal(err)
	}
	raw := 4 * len(f.Data)
	fmt.Printf("%s compressed %d -> %d bytes (ratio %.1fx)\n",
		f, raw, len(blob), float64(raw)/float64(len(blob)))

	dec, err := isosurface.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	for _, iso := range isos {
		a := isosurface.CellCases(f, iso)
		b := isosurface.CellCases(dec, iso)
		changed := 0
		active := 0
		for c := range a {
			if a[c] != 0 && a[c] != 0xFF {
				active++
			}
			if a[c] != b[c] {
				changed++
			}
		}
		fmt.Printf("isovalue %.2f: %6d surface cells, %d topology changes\n", iso, active, changed)
		if changed != 0 {
			log.Fatal("isosurface topology was not preserved!")
		}
	}
	fmt.Println("all isosurfaces preserved cell-exactly ✓")
}
