package repro

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/datagen"
	"repro/internal/field"
	"repro/internal/fixed"
	"repro/internal/mpi"
	"repro/internal/parallel"
)

// TestEndToEnd2D sweeps every dataset × speculation target and asserts
// the full guarantee chain: error bound semantics, exact critical point
// preservation, and decompression determinism.
func TestEndToEnd2D(t *testing.T) {
	datasets := map[string]*field.Field2D{
		"ocean": datagen.Ocean(96, 72),
	}
	for name, f := range datasets {
		tr, err := fixed.Fit(f.U, f.V)
		if err != nil {
			t.Fatal(err)
		}
		tau := 0.01 * rangeOf(f.U, f.V)
		orig := cp.DetectField2D(f, tr)
		for _, spec := range []core.Speculation{core.NoSpec, core.ST1, core.ST2, core.ST3, core.ST4} {
			t.Run(fmt.Sprintf("%s/%v", name, spec), func(t *testing.T) {
				blob, err := core.CompressField2D(f, tr, core.Options{Tau: tau, Spec: spec})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := core.Decompress2D(blob)
				if err != nil {
					t.Fatal(err)
				}
				rep := cp.Compare(orig, cp.DetectField2D(dec, tr))
				if !rep.Preserved() {
					t.Fatalf("critical points broken: %v", rep)
				}
				dec2, err := core.Decompress2D(blob)
				if err != nil {
					t.Fatal(err)
				}
				for i := range dec.U {
					if dec.U[i] != dec2.U[i] || dec.V[i] != dec2.V[i] {
						t.Fatal("decompression not deterministic")
					}
				}
			})
		}
	}
}

// TestEndToEnd3D sweeps the 3D datasets at reduced scale.
func TestEndToEnd3D(t *testing.T) {
	datasets := map[string]*field.Field3D{
		"hurricane":  datagen.Hurricane(24, 24, 12),
		"nek5000":    datagen.Nek5000(20, 20, 20),
		"turbulence": datagen.Turbulence(20, 20, 20, 3),
	}
	for name, f := range datasets {
		tr, err := fixed.Fit(f.U, f.V, f.W)
		if err != nil {
			t.Fatal(err)
		}
		tau := 0.01 * rangeOf(f.U, f.V, f.W)
		orig := cp.DetectField3D(f, tr)
		for _, spec := range []core.Speculation{core.NoSpec, core.ST2, core.ST4} {
			t.Run(fmt.Sprintf("%s/%v", name, spec), func(t *testing.T) {
				blob, err := core.CompressField3D(f, tr, core.Options{Tau: tau, Spec: spec})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := core.Decompress3D(blob)
				if err != nil {
					t.Fatal(err)
				}
				rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
				if !rep.Preserved() {
					t.Fatalf("critical points broken: %v", rep)
				}
				// Speculation deliberately trades PSNR for ratio
				// (Fig. 6: ST4 at τ=1% sits near 27 dB).
				floor := 30.0
				if spec == core.ST4 {
					floor = 20
				}
				if psnr := analysis.PSNR(f.Components(), dec.Components()); psnr < floor {
					t.Errorf("%v PSNR %v below floor %v at τ=1%% of range", spec, psnr, floor)
				}
			})
		}
	}
}

// TestEndToEndDistributed sweeps dataset × strategy × grid on the
// simulated machine.
func TestEndToEndDistributed(t *testing.T) {
	f := datagen.Turbulence(24, 24, 24, 5)
	tr, err := parallel.GlobalTransform3D(f)
	if err != nil {
		t.Fatal(err)
	}
	tau := 0.01 * rangeOf(f.U, f.V, f.W)
	orig := cp.DetectField3D(f, tr)
	if len(orig) == 0 {
		t.Fatal("test volume has no critical points")
	}
	for _, strat := range []parallel.Strategy{parallel.LosslessBorders, parallel.RatioOriented} {
		for _, p := range []int{2, 3} {
			t.Run(fmt.Sprintf("%v/p%d", strat, p), func(t *testing.T) {
				grid := parallel.Grid3D{PX: p, PY: p, PZ: p}
				res, err := parallel.CompressDistributed3D(f, tr,
					core.Options{Tau: tau}, grid, strat, mpi.Config{})
				if err != nil {
					t.Fatal(err)
				}
				dec, _, err := parallel.DecompressDistributed3D(res.Blobs, grid, 24, 24, 24, mpi.Config{})
				if err != nil {
					t.Fatal(err)
				}
				rep := cp.Compare(orig, cp.DetectField3D(dec, tr))
				if !rep.Preserved() {
					t.Fatalf("distributed run broke critical points: %v", rep)
				}
			})
		}
	}
}

// TestEndToEndAsymmetricGrids covers non-cubic decompositions and
// non-divisible dimensions.
func TestEndToEndAsymmetricGrids(t *testing.T) {
	f := datagen.Ocean(70, 54) // not divisible by 3
	tr, err := parallel.GlobalTransform2D(f)
	if err != nil {
		t.Fatal(err)
	}
	orig := cp.DetectField2D(f, tr)
	for _, grid := range []parallel.Grid2D{{PX: 3, PY: 1}, {PX: 1, PY: 3}, {PX: 3, PY: 2}} {
		t.Run(fmt.Sprintf("%dx%d", grid.PX, grid.PY), func(t *testing.T) {
			res, err := parallel.CompressDistributed2D(f, tr,
				core.Options{Tau: 0.05, Spec: core.ST2}, grid, parallel.RatioOriented, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			dec, _, err := parallel.DecompressDistributed2D(res.Blobs, grid, f.NX, f.NY, mpi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rep := cp.Compare(orig, cp.DetectField2D(dec, tr))
			if !rep.Preserved() {
				t.Fatalf("asymmetric grid broke critical points: %v", rep)
			}
		})
	}
}

func rangeOf(comps ...[]float32) float64 {
	var lo, hi float32 = comps[0][0], comps[0][0]
	for _, c := range comps {
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		return 1
	}
	return float64(hi - lo)
}
